"""Transport-parameterised conformance suite of the verification service.

The service's core promise: multiplexing many jobs never changes any job's
answer — and that promise must survive every execution backend.  The suite
therefore runs its properties against all four transports (the cooperative
single-threaded scheduler, the threaded worker pool, the supervised
worker-process pool, and the asyncio front-end): property-based tests
submit random job mixes (problems,
priorities, pool sizes, slice lengths) and require every job's verdict,
node charges, tree size, bound and counterexample to be byte-identical to a
solo run of a fresh verifier on a fresh driver.  On top of that the
scheduling policy itself is pinned per backend: priorities order work but
never starve (bounded wait), deadlines are honoured within one round's
granularity, and batch collection restores submission order.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import (
    AsyncVerificationService,
    JobRequest,
    ServiceConfig,
    VerificationService,
)
from repro.utils import Budget
from repro.verifiers.result import VerificationStatus

from conftest import make_robustness_problem

#: Node-only budgets keep solo and multiplexed trajectories deterministic
#: (wall-clock budgets would see the time spent preempted, as documented).
BUDGET_NODES = 60

#: Every execution backend the conformance properties must hold for.
TRANSPORTS = ("cooperative", "threaded", "process", "async")


def _problems():
    """A small bank of distinct problems (distinct fingerprints)."""
    bank = []
    for seed, shape, reference, epsilon in (
            (1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08),
            (1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.15),
            (1, [6, 10, 8, 4], [0.5] * 6, 0.1),
            (3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12),
    ):
        network = dense_network(shape, seed=seed)
        bank.append((network, make_robustness_problem(network, reference,
                                                      epsilon)))
    return bank


PROBLEMS = _problems()


def _solo(problem_index: int):
    network, spec = PROBLEMS[problem_index]
    return AbonnVerifier().verify(network, spec, Budget(max_nodes=BUDGET_NODES))


SOLO_RESULTS = [_solo(index) for index in range(len(PROBLEMS))]


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.bound is None:
        assert result.bound is None
    else:
        assert result.bound == solo.bound
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    """The execution backend a conformance test runs against."""
    return request.param


def _service_config(transport: str, **kwargs) -> ServiceConfig:
    """A ServiceConfig for ``transport`` (async rides on threaded)."""
    if transport in ("threaded", "process"):
        kwargs["transport"] = transport
    return ServiceConfig(**kwargs)


def _run_jobs(transport: str, submissions, **config_kwargs):
    """Run ``submissions`` (submit-kwargs dicts) on one backend.

    Returns ``(job_ids, results)`` with ``results`` keyed by job id —
    the uniform harness every conformance property goes through.
    """
    if transport == "async":
        return asyncio.run(_run_jobs_async(submissions, **config_kwargs))
    service = VerificationService(_service_config(transport, **config_kwargs))
    with service:
        job_ids = [service.submit(**submission) for submission in submissions]
        results = {done.job_id: done for done in service.as_completed()}
    return job_ids, results


async def _run_jobs_async(submissions, **config_kwargs):
    async with AsyncVerificationService(ServiceConfig(**config_kwargs)) as svc:
        job_ids = [await svc.submit(**submission) for submission in submissions]
        results = {job_id: await svc.result(job_id) for job_id in job_ids}
    return job_ids, results


def _submission(problem_index: int, **kwargs) -> dict:
    network, spec = PROBLEMS[problem_index]
    kwargs.setdefault("budget", Budget(max_nodes=BUDGET_NODES))
    return {"network": network, "spec": spec, **kwargs}


class TestSoloIdentical:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(jobs=st.lists(st.tuples(st.integers(0, len(PROBLEMS) - 1),
                                   st.integers(-5, 5)),
                         min_size=1, max_size=6),
           pool_size=st.sampled_from((1, 2, 4)),
           rounds_per_slice=st.integers(1, 6))
    def test_random_mixes_match_solo_runs(self, transport, jobs, pool_size,
                                          rounds_per_slice):
        """Any mix on any backend: every verdict/charge/cex solo-identical."""
        submissions = [_submission(problem_index, priority=priority)
                       for problem_index, priority in jobs]
        job_ids, results = _run_jobs(transport, submissions,
                                     pool_size=pool_size,
                                     rounds_per_slice=rounds_per_slice)
        assert set(results) == set(job_ids)
        for (problem_index, _), job_id in zip(jobs, job_ids):
            done = results[job_id]
            assert done.ok, f"job failed: {done.error}"
            _assert_identical(done.result, SOLO_RESULTS[problem_index])

    def test_run_until_complete_orders_by_submission(self, transport):
        """Batch collection restores submission order on every backend."""
        submissions = [_submission(0, priority=priority)
                       for priority in (0, 9, 3)]
        if transport == "async":
            async def collect():
                async with AsyncVerificationService(
                        ServiceConfig(pool_size=2)) as svc:
                    requests = [JobRequest(network=sub["network"],
                                           spec=sub["spec"],
                                           budget=sub["budget"],
                                           priority=sub["priority"])
                                for sub in submissions]
                    return await svc.run(requests)
            results = asyncio.run(collect())
            assert [int(done.job_id.split("-")[1]) for done in results] \
                == sorted(int(done.job_id.split("-")[1]) for done in results)
        else:
            service = VerificationService(_service_config(transport,
                                                          pool_size=2))
            with service:
                ids = [service.submit(**sub) for sub in submissions]
                results = service.run_until_complete()
            assert [done.job_id for done in results] == ids
        for done in results:
            assert done.ok
            _assert_identical(done.result, SOLO_RESULTS[0])

    def test_stream_results_accepts_requests(self, transport):
        if transport == "async":
            pytest.skip("streaming via JobRequest lists is run()/as_completed "
                        "on the async front-end, covered elsewhere")
        network, spec = PROBLEMS[1]
        requests = [JobRequest(network=network, spec=spec,
                               budget=Budget(max_nodes=BUDGET_NODES))
                    for _ in range(3)]
        service = VerificationService(_service_config(transport, pool_size=1))
        with service:
            seen = list(service.stream_results(requests))
        assert len(seen) == 3
        for done in seen:
            _assert_identical(done.result, SOLO_RESULTS[1])


class TestBoundedWait:
    def test_priorities_order_work_within_a_worker(self, transport):
        """With one worker, the high-priority job finishes first."""
        submissions = [_submission(0, priority=0), _submission(0, priority=5)]
        job_ids, results = _run_jobs(transport, submissions, pool_size=1,
                                     rounds_per_slice=1)
        low, high = job_ids
        assert results[low].ok and results[high].ok
        if transport == "cooperative":
            # Exact slice-level interleaving is only deterministic when the
            # caller drives the scheduler: a free-running worker may pick up
            # the first job before the rival is even submitted.  The first
            # slice goes to the high-priority job, so the low one waits at
            # least one slice while high never waits.
            assert results[high].wait_slices == 0
            assert results[low].wait_slices >= 1
        for job_id in job_ids:
            _assert_identical(results[job_id].result, SOLO_RESULTS[0])

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(max_wait=st.integers(1, 4), rivals=st.integers(2, 5))
    def test_oldest_job_wait_is_bounded(self, transport, max_wait, rivals):
        """Rivals at higher priority cannot push the oldest job's wait
        beyond ``max_wait_slices`` slices between any two of its slices."""
        submissions = ([_submission(2, priority=0)]
                       + [_submission(2, priority=10)
                          for _ in range(rivals)])
        job_ids, results = _run_jobs(transport, submissions, pool_size=1,
                                     rounds_per_slice=1,
                                     max_wait_slices=max_wait)
        low = results[job_ids[0]]
        assert low.ok
        # Bounded wait: the low job is the oldest submission, so between
        # two of its slices at most max_wait_slices slices go to rivals.
        assert low.wait_slices <= low.slices * max_wait
        _assert_identical(low.result, SOLO_RESULTS[2])

    def test_low_priority_job_is_never_starved_under_injection(self):
        """A continuous stream of high-priority rivals cannot starve a job.

        New rivals are injected every slice; the low-priority job must
        still run within ``max_wait_slices`` slices of any point in time,
        so it finishes long before the (endless) rival stream drains.
        Cooperative-only: the injection is interleaved with manual
        ``step()`` calls, which only the caller-driven transport exposes —
        the policy itself is shared code, pinned for the other backends by
        ``test_oldest_job_wait_is_bounded``.
        """
        max_wait = 2
        service = VerificationService(ServiceConfig(
            pool_size=1, rounds_per_slice=1, max_wait_slices=max_wait))
        network, spec = PROBLEMS[2]
        low = service.submit(network, spec,
                             budget=Budget(max_nodes=BUDGET_NODES), priority=0)
        for _ in range(3):
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES), priority=10)
        slices = 0
        while service.result(low) is None:
            # Keep the pressure on: one fresh high-priority rival per slice.
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES), priority=10)
            service.step()
            slices += 1
            assert slices < 500, "low-priority job starved"
        done = service.result(low)
        assert done.ok
        assert done.wait_slices <= done.slices * max_wait
        _assert_identical(done.result, SOLO_RESULTS[2])


class TestDeadlines:
    def test_expired_deadline_times_out_within_one_slice(self, transport):
        job_ids, results = _run_jobs(
            transport, [_submission(0, deadline_seconds=1e-9)], pool_size=1)
        done = results[job_ids[0]]
        assert done.deadline_exceeded
        assert done.result.status == VerificationStatus.TIMEOUT
        assert done.slices == 1  # honoured before the first round

    def test_generous_deadline_does_not_disturb_the_run(self, transport):
        job_ids, results = _run_jobs(
            transport, [_submission(0, deadline_seconds=3600.0)], pool_size=1)
        done = results[job_ids[0]]
        assert not done.deadline_exceeded
        _assert_identical(done.result, SOLO_RESULTS[0])

    def test_mid_run_deadline_interrupts_with_best_bound(self, transport):
        """A deadline that expires mid-run yields TIMEOUT with a bound."""
        job_ids, results = _run_jobs(
            transport,
            [_submission(1, budget=Budget(max_nodes=10_000),
                         deadline_seconds=0.5)],
            pool_size=1, rounds_per_slice=1)
        done = results[job_ids[0]]
        assert done.ok
        if done.deadline_exceeded:
            assert done.result.status == VerificationStatus.TIMEOUT

    def test_invalid_deadline_rejected(self, transport):
        """A non-positive deadline is a structured submit-time rejection.

        The job is accepted and immediately finalised with
        ``JobError(kind="InvalidRequest", stage="submit")`` and zero
        attempts — no exception, and other jobs in the batch still run.
        """
        network, spec = PROBLEMS[0]
        if transport == "async":
            async def bad_submit():
                async with AsyncVerificationService() as svc:
                    job_id = await svc.submit(network, spec,
                                              deadline_seconds=0.0)
                    return await svc.result(job_id)
            done = asyncio.run(bad_submit())
        else:
            service = VerificationService(_service_config(transport))
            with service:
                job_id = service.submit(network, spec, deadline_seconds=0.0)
                done = service.result(job_id)
        assert not done.ok
        assert done.error.kind == "InvalidRequest"
        assert done.error.stage == "submit"
        assert done.attempts == 0
        assert "deadline_seconds" in done.error.message

    def test_invalid_budget_rejected_and_batch_survives(self, transport):
        """Non-positive budget limits reject at submit; good jobs run on.

        The rejection flows through the normal completion stream, so a
        mixed batch yields every result — the bad job's structured error
        alongside the good jobs' verdicts.
        """
        submissions = [_submission(0),
                       _submission(0, budget=Budget(max_nodes=0)),
                       _submission(0, budget=Budget(max_seconds=-1.0))]
        job_ids, results = _run_jobs(transport, submissions, pool_size=1)
        assert set(results) == set(job_ids)
        good, bad_nodes, bad_seconds = (results[job_id] for job_id in job_ids)
        assert good.ok
        _assert_identical(good.result, SOLO_RESULTS[0])
        for done, field in ((bad_nodes, "max_nodes"),
                            (bad_seconds, "max_seconds")):
            assert not done.ok
            assert done.error.kind == "InvalidRequest"
            assert done.error.stage == "submit"
            assert done.attempts == 0
            assert field in done.error.message


class TestSchedulerPlumbing:
    """Caller-driven plumbing of the cooperative transport."""

    def test_step_without_work_returns_none(self):
        service = VerificationService()
        assert service.step() is None
        assert not service.has_pending()

    def test_result_raises_for_unknown_job(self):
        service = VerificationService()
        with pytest.raises(KeyError):
            service.result("job-404")

    def test_stats_counts_jobs_and_slices(self):
        service = VerificationService(ServiceConfig(pool_size=2))
        network, spec = PROBLEMS[0]
        for _ in range(3):
            service.submit(network, spec,
                           budget=Budget(max_nodes=BUDGET_NODES))
        service.run_until_complete()
        stats = service.stats()
        assert stats["jobs_submitted"] == 3
        assert stats["jobs_completed"] == 3
        assert stats["jobs_failed"] == 0
        assert stats["slices"] >= 3
        assert stats["transport"] == "cooperative"
        assert stats["pool"]["fingerprints"] == 1

    def test_sharding_keeps_a_fingerprint_on_one_worker(self):
        """Same fingerprint, same worker index at every pool size."""
        network, spec = PROBLEMS[0]
        for pool_size in (1, 2, 4):
            service = VerificationService(ServiceConfig(pool_size=pool_size))
            ids = [service.submit(network, spec,
                                  budget=Budget(max_nodes=BUDGET_NODES))
                   for _ in range(3)]
            workers = {service._jobs[job_id].worker for job_id in ids}
            assert len(workers) == 1
