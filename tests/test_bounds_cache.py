"""Correctness tests for the split-aware bound cache.

Cache hits must never change verdicts: a complete ABONN (and BaB baseline)
run with caching on must produce the same ``VerificationResult`` as with
caching off, and the cache must respect its configured size bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.cache import BoundCache, LayerEntry
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core import AbonnConfig, AbonnVerifier
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.appver import ApproximateVerifier


def _problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float).reshape(-1)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


def _results_equal(with_cache, without_cache):
    assert with_cache.status == without_cache.status
    assert with_cache.nodes_explored == without_cache.nodes_explored
    assert with_cache.tree_size == without_cache.tree_size
    if without_cache.bound is None:
        assert with_cache.bound is None
    else:
        assert with_cache.bound == pytest.approx(without_cache.bound, abs=1e-12)
    if without_cache.counterexample is None:
        assert with_cache.counterexample is None
    else:
        assert np.allclose(with_cache.counterexample, without_cache.counterexample,
                           atol=1e-12)
    assert with_cache.extras["max_depth"] == without_cache.extras["max_depth"]


class TestCacheDoesNotChangeVerdicts:
    #: (sample index, epsilon) pairs covering verified-after-branching,
    #: falsified-after-branching and root-resolved problems.
    PROBLEMS = [(25, 0.15), (13, 0.2), (3, 0.1)]

    @pytest.mark.parametrize("index,epsilon", PROBLEMS)
    def test_abonn_cache_on_vs_off(self, trained_network, index, epsilon):
        network, dataset = trained_network
        image, _ = dataset.sample(index)
        spec = _problem(network, image.reshape(-1), epsilon)
        results = {}
        for use_cache in (True, False):
            config = AbonnConfig(use_bound_cache=use_cache)
            results[use_cache] = AbonnVerifier(config).verify(
                network, spec, Budget(max_nodes=120))
        _results_equal(results[True], results[False])

    def test_branching_run_produces_layer_hits(self, trained_network):
        """Splits below the last layer reuse the parent's prefix entries."""
        network, dataset = trained_network
        image, _ = dataset.sample(25)
        spec = _problem(network, image.reshape(-1), 0.15)
        result = AbonnVerifier().verify(network, spec, Budget(max_nodes=120))
        assert result.nodes_explored > 1, "problem must require branching"
        assert result.extras["bound_cache"]["layer_hits"] > 0

    def test_abonn_cache_on_vs_off_with_probing_heuristic(self, trained_network):
        """FSB probes children that are later expanded: report-cache hits."""
        network, dataset = trained_network
        image, _ = dataset.sample(25)
        spec = _problem(network, image.reshape(-1), 0.15)
        results = {}
        for use_cache in (True, False):
            config = AbonnConfig(heuristic="fsb", use_bound_cache=use_cache)
            results[use_cache] = AbonnVerifier(config).verify(
                network, spec, Budget(max_nodes=200))
        _results_equal(results[True], results[False])
        cache_stats = results[True].extras["bound_cache"]
        assert cache_stats["report_hits"] > 0

    def test_sequential_hits_are_bitwise_identical(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        cached = ApproximateVerifier(small_network, spec, use_cache=True)
        plain = ApproximateVerifier(small_network, spec, use_cache=False)
        root_report = cached.evaluate().report
        neurons = root_report.unstable_neurons()[:3]
        chain = SplitAssignment.empty()
        for layer, unit in neurons:
            chain = chain.with_split(ReluSplit(layer, unit, ACTIVE))
            for splits in (chain, chain):  # second pass is a report-cache hit
                assert cached.evaluate(splits).p_hat == plain.evaluate(splits).p_hat


class TestCacheSizeBound:
    def test_lru_eviction_respects_max_entries(self):
        cache = BoundCache(max_entries=2)
        entry = LayerEntry(np.zeros(2), np.ones(2), np.zeros(2), np.ones(2),
                           np.zeros(2), False)
        cache.put_layer(0, ("a",), entry)
        cache.put_layer(0, ("b",), entry)
        cache.put_layer(0, ("c",), entry)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get_layer(0, ("a",)) is None  # oldest evicted
        assert cache.get_layer(0, ("c",)) is not None

    def test_get_refreshes_recency(self):
        cache = BoundCache(max_entries=2)
        entry = LayerEntry(np.zeros(1), np.ones(1), np.zeros(1), np.ones(1),
                           np.zeros(1), False)
        cache.put_layer(0, ("a",), entry)
        cache.put_layer(0, ("b",), entry)
        cache.get_layer(0, ("a",))  # refresh "a"; "b" becomes LRU
        cache.put_layer(0, ("c",), entry)
        assert cache.get_layer(0, ("a",)) is not None
        assert cache.get_layer(0, ("b",)) is None

    def test_verifier_cache_respects_configured_bound(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        verifier = ApproximateVerifier(small_network, spec, cache_size=6)
        root = verifier.evaluate().report
        for layer, unit in root.unstable_neurons():
            for phase in (ACTIVE, INACTIVE):
                verifier.evaluate(SplitAssignment.from_splits(
                    [ReluSplit(layer, unit, phase)]))
        assert len(verifier.cache) <= 6
        assert verifier.cache.stats.evictions > 0

    def test_abonn_result_stable_under_tiny_cache(self, small_network):
        """Evictions (like hits) must never change the verdict."""
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        budget = Budget(max_nodes=150)
        tiny = AbonnVerifier(AbonnConfig(bound_cache_size=3)).verify(
            small_network, spec, budget.copy())
        unbounded = AbonnVerifier(AbonnConfig(use_bound_cache=False)).verify(
            small_network, spec, budget.copy())
        _results_equal(tiny, unbounded)

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            BoundCache(max_entries=0)
        with pytest.raises(ValueError):
            AbonnConfig(bound_cache_size=0)


class TestEvictionCountersByKind:
    """Evictions are counted per entry kind, with ``evictions`` their sum.

    The cache stores layer entries and whole-report entries in one LRU
    store; a single shared counter could not tell whether pressure came
    from the per-layer prefix entries or the memoised reports.
    """

    @staticmethod
    def _entry():
        return LayerEntry(np.zeros(2), np.ones(2), np.zeros(2), np.ones(2),
                          np.zeros(2), False)

    def test_layer_and_report_evictions_counted_separately(self):
        cache = BoundCache(max_entries=2)
        cache.put_layer(0, ("a",), self._entry())
        cache.put_layer(0, ("b",), self._entry())
        cache.put_report(("r",), True, "report")  # evicts layer ("a",)
        cache.put_report(("s",), True, "report")  # evicts layer ("b",)
        cache.put_report(("t",), True, "report")  # evicts report ("r",)
        assert cache.stats.layer_evictions == 2
        assert cache.stats.report_evictions == 1
        assert cache.stats.evictions == 3

    def test_as_dict_exposes_both_kinds(self):
        cache = BoundCache(max_entries=1)
        cache.put_layer(0, ("a",), self._entry())
        cache.put_layer(0, ("b",), self._entry())
        stats = cache.stats.as_dict()
        assert stats["evictions"] == 1
        assert stats["layer_evictions"] == 1
        assert stats["report_evictions"] == 0

    def test_lp_cache_eviction_counter(self):
        from repro.bounds.cache import LpCache

        cache = LpCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put((key,), "optimum")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(("a",)) is None  # oldest evicted


class TestCacheStats:
    def test_stats_accumulate(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        verifier = ApproximateVerifier(small_network, spec)
        verifier.evaluate()
        assert verifier.cache.stats.report_misses == 1
        verifier.evaluate()
        assert verifier.cache.stats.report_hits == 1
        stats = verifier.cache_stats()
        assert stats["layer_misses"] == small_network.lowered().num_relu_layers

    def test_disabled_cache_reports_zero_stats(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        verifier = ApproximateVerifier(small_network, spec, use_cache=False)
        verifier.evaluate()
        assert verifier.cache is None
        stats = verifier.cache_stats()
        assert stats["batch_histogram"] == {}
        # candidate_misses counts validation work, not cache reuse — every
        # other counter must be zero with the bound cache disabled.
        assert all(value == 0 for key, value in stats.items()
                   if key not in ("batch_histogram", "candidate_misses"))

    def test_clear_empties_cache(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        verifier = ApproximateVerifier(small_network, spec)
        verifier.evaluate()
        assert len(verifier.cache) > 0
        verifier.cache.clear()
        assert len(verifier.cache) == 0
