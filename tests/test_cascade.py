"""Tests for the precision-cascade dispatcher and the relaxed bound mode.

Three layers of coverage:

* **soundness** (property-based): the frozen-relaxation reports of
  :meth:`DeepPolyAnalyzer.analyze_batch_relaxed` must lower-bound the true
  spec margin on every sampled input that satisfies the child's split
  constraints, and a relaxed ``infeasible`` flag must imply the exact
  path's;
* **trajectory equality**: verdicts, node charges and counterexamples must
  be identical with the cascade on vs. off at ``K ∈ {1, 2, 8}`` — a
  prefilter stage may only decide children the exact path also proves;
* **plumbing**: ``extras["cascade"]`` is surfaced by all three verifiers
  with a stable schema, outcomes carry stage tags, and the cascade-off
  configuration stays on the single-back-end path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bab import BaBBaselineVerifier
from repro.baselines.alphabeta_crown import AlphaBetaCrownVerifier
from repro.bounds.cache import BoundCache
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.appver import ApproximateVerifier, CascadeConfig

from test_bounds_incremental import _random_problem

CASCADE_ON = CascadeConfig(enabled=True)
STAGE_NAMES = ("ibp", "relaxed", "deeppoly", "exact")


def _problem(dataset, index, epsilon):
    image, label = dataset.sample(index)
    return local_robustness_spec(image.reshape(-1), epsilon, label,
                                 dataset.num_classes)


def _warmed_children(analyzer, box, spec, cache, limit=4):
    """Analyse the root, then one-split children of its unstable neurons."""
    parent = SplitAssignment.empty()
    report = analyzer.analyze(box, parent, spec=spec, cache=cache)
    children, parents = [], []
    for layer, unit in report.unstable_neurons(parent)[:limit]:
        for phase in (ACTIVE, INACTIVE):
            children.append(parent.with_split(ReluSplit(layer, unit, phase)))
            parents.append(parent)
    return children, parents


class TestRelaxedModeSoundness:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 3),
           width=st.integers(2, 5), epsilon=st.floats(0.02, 0.3))
    def test_relaxed_bound_holds_on_sampled_feasible_points(self, seed, depth,
                                                            width, epsilon):
        """``p̂`` from the frozen-relaxation pass is a true lower bound of
        the spec margin over the child's feasible region."""
        network, spec = _random_problem(seed, depth, width, epsilon)
        analyzer = DeepPolyAnalyzer(network)
        box = spec.input_box
        cache = BoundCache()
        children, parents = _warmed_children(analyzer, box, spec.output_spec,
                                             cache)
        assume(children)
        reports = analyzer.analyze_batch_relaxed(box, children,
                                                 spec=spec.output_spec,
                                                 cache=cache, parents=parents)
        rng = np.random.default_rng(seed + 7)
        samples = rng.uniform(box.lower, box.upper, size=(64, box.dimension))
        outputs = network.forward(samples)
        for child, report in zip(children, reports):
            if report is None or report.infeasible:
                continue
            assert report.method == "deeppoly-relaxed"
            for x, y in zip(samples, outputs):
                if child.satisfied_by(network.pre_activations(x)):
                    assert spec.output_spec.margin(y) >= report.p_hat - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 3),
           width=st.integers(2, 5))
    def test_relaxed_infeasible_implies_exact_infeasible(self, seed, depth,
                                                         width):
        """A phase conflict on the parent's (looser) bounds must also be a
        conflict on the child's own bounds."""
        network, spec = _random_problem(seed, depth, width, 0.05)
        analyzer = DeepPolyAnalyzer(network)
        box = spec.input_box
        cache = BoundCache()
        parent = SplitAssignment.empty()
        report = analyzer.analyze(box, parent, spec=spec.output_spec,
                                  cache=cache)
        stable = [(layer, unit, report.pre_activation_bounds[layer].lower[unit])
                  for layer, bounds in enumerate(report.pre_activation_bounds)
                  for unit in range(bounds.size)
                  if bounds.lower[unit] > 1e-6]
        assume(stable)
        layer, unit, _ = stable[0]
        child = parent.with_split(ReluSplit(layer, unit, INACTIVE))
        relaxed = analyzer.analyze_batch_relaxed(box, [child],
                                                 spec=spec.output_spec,
                                                 cache=cache,
                                                 parents=[parent])[0]
        assert relaxed is not None and relaxed.infeasible
        assert relaxed.p_hat == float("inf")
        exact = analyzer.analyze(box, child, spec=spec.output_spec)
        assert exact.infeasible

    def test_relaxed_requires_cache_parents_and_entries(self, small_network):
        reference = np.array([0.45, 0.55, 0.5, 0.4])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.12, label, 3)
        lowered = small_network.lowered()
        analyzer = DeepPolyAnalyzer(lowered)
        box = spec.input_box
        child = SplitAssignment.empty().with_split(ReluSplit(0, 0, ACTIVE))
        parent = SplitAssignment.empty()
        # No cache / no parents → the mode does not apply.
        assert analyzer.analyze_batch_relaxed(box, [child],
                                              spec=spec.output_spec) == [None]
        cold = BoundCache()
        assert analyzer.analyze_batch_relaxed(
            box, [child], spec=spec.output_spec, cache=cold,
            parents=[parent]) == [None]  # parent never analysed: no entries
        # A grandchild of an analysed parent is not a one-split extension.
        warm = BoundCache()
        analyzer.analyze(box, parent, spec=spec.output_spec, cache=warm)
        grandchild = child.with_split(ReluSplit(0, 1, ACTIVE))
        assert analyzer.analyze_batch_relaxed(
            box, [grandchild], spec=spec.output_spec, cache=warm,
            parents=[parent]) == [None]

    def test_relaxed_mode_never_writes_the_cache(self, small_network):
        reference = np.array([0.45, 0.55, 0.5, 0.4])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.12, label, 3)
        analyzer = DeepPolyAnalyzer(small_network.lowered())
        box = spec.input_box
        cache = BoundCache()
        children, parents = _warmed_children(analyzer, box, spec.output_spec,
                                             cache)
        assert children
        size_before = len(cache)
        reports = analyzer.analyze_batch_relaxed(box, children,
                                                 spec=spec.output_spec,
                                                 cache=cache, parents=parents)
        assert any(report is not None for report in reports)
        assert len(cache) == size_before


class TestCascadeTrajectoryEquality:
    """Cascade on vs. off: verdict, charges and counterexample identical."""

    #: (sample index, epsilon) pairs covering verified-after-branching,
    #: falsified-after-branching and root-resolved problems.
    PROBLEMS = [(25, 0.15), (13, 0.2), (13, 0.12)]

    @staticmethod
    def _assert_identical(off, on):
        assert on.status == off.status
        assert on.nodes_explored == off.nodes_explored
        if off.bound is None:
            assert on.bound is None
        else:
            assert on.bound == pytest.approx(off.bound, abs=1e-12)
        if off.counterexample is None:
            assert on.counterexample is None
        else:
            np.testing.assert_array_equal(on.counterexample,
                                          off.counterexample)

    @pytest.mark.parametrize("frontier_size", [1, 2, 8])
    @pytest.mark.parametrize("index,epsilon", PROBLEMS)
    def test_abonn_identical_at_all_frontier_sizes(self, trained_network,
                                                   frontier_size, index,
                                                   epsilon):
        network, dataset = trained_network
        spec = _problem(dataset, index, epsilon)
        budget = Budget(max_nodes=300)
        off = AbonnVerifier(AbonnConfig(frontier_size=frontier_size)).verify(
            network, spec, budget.copy())
        on = AbonnVerifier(AbonnConfig(frontier_size=frontier_size,
                                       cascade=CASCADE_ON)).verify(
            network, spec, budget.copy())
        self._assert_identical(off, on)

    @pytest.mark.parametrize("frontier_size", [1, 8])
    def test_bab_baseline_identical(self, trained_network, frontier_size):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.2)
        budget = Budget(max_nodes=300)
        off = BaBBaselineVerifier(frontier_size=frontier_size).verify(
            network, spec, budget.copy())
        on = BaBBaselineVerifier(frontier_size=frontier_size,
                                 cascade=CASCADE_ON).verify(
            network, spec, budget.copy())
        self._assert_identical(off, on)

    @pytest.mark.parametrize("frontier_size", [1, 8])
    def test_alphabeta_identical(self, trained_network, frontier_size):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.2)
        budget = Budget(max_nodes=300)
        off = AlphaBetaCrownVerifier(frontier_size=frontier_size).verify(
            network, spec, budget.copy())
        on = AlphaBetaCrownVerifier(frontier_size=frontier_size,
                                    cascade=CASCADE_ON).verify(
            network, spec, budget.copy())
        self._assert_identical(off, on)


class TestAdaptiveGating:
    """A prefilter whose decide rate cannot pay for itself is switched off.

    Gating is count-based (deterministic) and trajectory-safe: a gated
    stage's children simply fall through to the exact stage, which would
    have re-derived the same verdicts anyway.
    """

    def _children(self, verifier):
        root = verifier.evaluate()
        unstable = root.report.unstable_neurons()
        assert unstable
        parent = SplitAssignment.empty()
        children = [parent.with_split(ReluSplit(layer, unit, phase))
                    for layer, unit in unstable[:3]
                    for phase in (ACTIVE, INACTIVE)]
        return children, [parent] * len(children)

    def test_cold_prefilters_switch_off_after_warmup(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        config = CascadeConfig(enabled=True, warmup_children=1,
                               min_decide_rate=1.0)
        verifier = ApproximateVerifier(network, spec, "deeppoly",
                                       cascade=config)
        children, parents = self._children(verifier)
        verifier.evaluate_batch(children, parents=parents)
        seen_first = dict(verifier.cascade_seen)
        decided_first = dict(verifier.cascade_decided)
        cold = [stage for stage in ("ibp", "relaxed")
                if decided_first.get(stage, 0) < seen_first.get(stage, 0)]
        assert cold, "the problem must leave at least one stage under-rate"
        verifier.evaluate_batch(children, parents=parents)
        for stage in cold:  # seen stops growing: the stage no longer runs
            assert verifier.cascade_seen[stage] == seen_first[stage]

    def test_adaptive_off_keeps_prefilters_running(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        config = CascadeConfig(enabled=True, adaptive=False)
        verifier = ApproximateVerifier(network, spec, "deeppoly",
                                       cascade=config)
        children, parents = self._children(verifier)
        verifier.evaluate_batch(children, parents=parents)
        seen_first = verifier.cascade_seen["ibp"]
        assert seen_first == len(children)
        verifier.evaluate_batch(children, parents=parents)
        assert verifier.cascade_seen["ibp"] == 2 * seen_first

    def test_warmup_window_always_runs_the_stages(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        config = CascadeConfig(enabled=True, warmup_children=10_000,
                               min_decide_rate=1.0)
        verifier = ApproximateVerifier(network, spec, "deeppoly",
                                       cascade=config)
        children, parents = self._children(verifier)
        for _ in range(3):
            verifier.evaluate_batch(children, parents=parents)
        assert verifier.cascade_seen["ibp"] == 3 * len(children)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            CascadeConfig(warmup_children=-1)
        with pytest.raises(ValueError):
            CascadeConfig(min_decide_rate=1.5)


class TestCascadeExtras:
    EXPECTED_KEYS = {"enabled", "children", "decided", "seen", "seconds",
                     "pre_exact_fraction", "attached_by_stage"}

    def test_schema_exposed_by_all_verifiers(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        for verifier in (AbonnVerifier(AbonnConfig(frontier_size=2,
                                                   cascade=CASCADE_ON)),
                         BaBBaselineVerifier(frontier_size=2,
                                             cascade=CASCADE_ON),
                         AlphaBetaCrownVerifier(frontier_size=2,
                                                cascade=CASCADE_ON)):
            result = verifier.verify(network, spec, Budget(max_nodes=300))
            cascade = result.extras["cascade"]
            assert set(cascade) == self.EXPECTED_KEYS
            assert cascade["enabled"] is True
            decided = cascade["decided"]
            if decided:  # empty on pre-BaB exits (e.g. attack falsified)
                assert set(decided) == set(STAGE_NAMES)
                assert cascade["children"] == sum(decided.values())
                assert set(cascade["seconds"]) == set(STAGE_NAMES)
                assert 0.0 <= cascade["pre_exact_fraction"] <= 1.0
            by_stage = cascade["attached_by_stage"]
            assert sum(by_stage.values()) <= cascade["children"]

    def test_disabled_cascade_reports_inactive_block(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        result = AbonnVerifier(AbonnConfig(frontier_size=2)).verify(
            network, spec, Budget(max_nodes=120))
        cascade = result.extras["cascade"]
        assert cascade["enabled"] is False
        assert cascade["children"] == 0
        assert all(count == 0 for count in cascade["decided"].values())

    def test_outcomes_carry_stage_tags(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        verifier = ApproximateVerifier(network, spec, "deeppoly",
                                       cascade=CASCADE_ON)
        root = verifier.evaluate()
        unstable = root.report.unstable_neurons()
        assert unstable
        parent = SplitAssignment.empty()
        children = [parent.with_split(ReluSplit(layer, unit, phase))
                    for layer, unit in unstable[:3]
                    for phase in (ACTIVE, INACTIVE)]
        outcomes = verifier.evaluate_batch(children,
                                           parents=[parent] * len(children))
        assert all(outcome.stage in STAGE_NAMES for outcome in outcomes)
        stats = verifier.cascade_stats()
        assert stats["children"] == len(children)
        assert sum(stats["decided"].values()) == len(children)

    def test_cascade_off_leaves_stage_untagged(self, trained_network):
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.12)
        verifier = ApproximateVerifier(network, spec, "deeppoly")
        root = verifier.evaluate()
        unstable = root.report.unstable_neurons()
        assert unstable
        layer, unit = unstable[0]
        parent = SplitAssignment.empty()
        children = [parent.with_split(ReluSplit(layer, unit, phase))
                    for phase in (ACTIVE, INACTIVE)]
        outcomes = verifier.evaluate_batch(children,
                                           parents=[parent] * len(children))
        assert all(outcome.stage is None for outcome in outcomes)
        assert verifier.cascade_stats()["children"] == 0

    def test_prefilter_stages_never_falsify(self, trained_network):
        """Cheap stages only decide verified children: every falsified or
        unknown outcome must come from the exact stage."""
        network, dataset = trained_network
        spec = _problem(dataset, 13, 0.2)
        result = AbonnVerifier(AbonnConfig(frontier_size=8,
                                           cascade=CASCADE_ON)).verify(
            network, spec, Budget(max_nodes=300))
        by_stage = result.extras["cascade"]["attached_by_stage"]
        assert set(by_stage) <= set(STAGE_NAMES)
        if result.status.name == "FALSIFIED":
            # The falsifying child was necessarily bounded by the exact stage.
            assert by_stage.get("exact", 0) >= 1
