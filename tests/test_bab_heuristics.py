"""Tests for repro.bab.heuristics (ReLU branching heuristics)."""

import numpy as np
import pytest

from repro.bab.heuristics import (
    BaBSRHeuristic,
    BranchingContext,
    DeepSplitHeuristic,
    FSBHeuristic,
    RandomHeuristic,
    WidestHeuristic,
    available_heuristics,
    make_heuristic,
    output_sensitivities,
)
from repro.bounds.splits import ACTIVE, ReluSplit, SplitAssignment
from repro.specs.robustness import local_robustness_spec
from repro.verifiers.appver import ApproximateVerifier

ALL_HEURISTICS = ["widest", "babsr", "deepsplit", "fsb", "random"]


@pytest.fixture()
def context(small_network):
    reference = np.array([0.4, 0.5, 0.6, 0.3])
    label = int(small_network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, 0.25, label, 3)
    appver = ApproximateVerifier(small_network, spec)
    outcome = appver.evaluate()
    return BranchingContext(network=appver.lowered, spec=spec.output_spec,
                            report=outcome.report, splits=SplitAssignment.empty(),
                            evaluate_split=lambda splits: appver.evaluate(splits).p_hat)


class TestRegistry:
    def test_all_heuristics_registered(self):
        assert set(available_heuristics()) == set(ALL_HEURISTICS)

    @pytest.mark.parametrize("name", ALL_HEURISTICS)
    def test_make_heuristic(self, name):
        assert make_heuristic(name).name == name

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            make_heuristic("smartest")


class TestSelection:
    @pytest.mark.parametrize("name", ALL_HEURISTICS)
    def test_selects_an_unstable_neuron(self, name, context):
        neuron = make_heuristic(name).select(context)
        assert neuron in context.unstable_neurons()

    @pytest.mark.parametrize("name", ALL_HEURISTICS)
    def test_returns_none_when_everything_is_decided(self, name, context):
        splits = SplitAssignment.empty()
        for layer, unit in context.report.unstable_neurons():
            splits = splits.with_split(ReluSplit(layer, unit, ACTIVE))
        leaf_context = BranchingContext(network=context.network, spec=context.spec,
                                        report=context.report, splits=splits)
        assert make_heuristic(name).select(leaf_context) is None

    def test_deterministic_heuristics_are_stable(self, context):
        for name in ("widest", "babsr", "deepsplit"):
            heuristic = make_heuristic(name)
            assert heuristic.select(context) == heuristic.select(context)

    def test_widest_picks_maximal_interval(self, context):
        neuron = WidestHeuristic().select(context)
        widths = {}
        for layer, unit in context.unstable_neurons():
            bounds = context.report.pre_activation_bounds[layer]
            widths[(layer, unit)] = bounds.upper[unit] - bounds.lower[unit]
        assert widths[neuron] == pytest.approx(max(widths.values()))

    def test_fsb_without_evaluator_falls_back(self, context):
        bare = BranchingContext(network=context.network, spec=context.spec,
                                report=context.report, splits=context.splits)
        neuron = FSBHeuristic(shortlist_size=3).select(bare)
        assert neuron in bare.unstable_neurons()

    def test_fsb_with_evaluator_picks_from_shortlist(self, context):
        heuristic = FSBHeuristic(shortlist_size=2)
        shortlist_scores = BaBSRHeuristic().scores(context, context.unstable_neurons())
        order = np.argsort(shortlist_scores)[::-1][:2]
        shortlist = {context.unstable_neurons()[int(i)] for i in order}
        assert heuristic.select(context) in shortlist

    def test_random_heuristic_is_seedable(self, context):
        a = RandomHeuristic(seed=1).select(context)
        b = RandomHeuristic(seed=1).select(context)
        assert a == b


class TestScores:
    def test_babsr_scores_nonnegative(self, context):
        scores = BaBSRHeuristic().scores(context, context.unstable_neurons())
        assert np.all(scores >= 0.0)

    def test_deepsplit_scores_at_least_direct_term(self, context):
        unstable = context.unstable_neurons()
        direct = DeepSplitHeuristic(indirect_weight=0.0).scores(context, unstable)
        combined = DeepSplitHeuristic(indirect_weight=1.0).scores(context, unstable)
        assert np.all(combined >= direct - 1e-12)

    def test_negative_indirect_weight_rejected(self):
        with pytest.raises(ValueError):
            DeepSplitHeuristic(indirect_weight=-0.5)

    def test_output_sensitivities_shapes(self, context):
        sensitivities = output_sensitivities(context.network, context.spec, context.report)
        assert len(sensitivities) == context.network.num_relu_layers
        for layer, sizes in enumerate(context.network.relu_layer_sizes()):
            assert sensitivities[layer].shape == (sizes,)
            assert np.all(sensitivities[layer] >= 0.0)
