"""Shared fixtures: small networks, specifications and suites used across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_blob_dataset
from repro.nn import Conv2d, Dense, Flatten, Network, ReLU, dense_network
from repro.nn.training import TrainingConfig, train_network
from repro.specs import local_robustness_spec
from repro.utils import Budget


@pytest.fixture(scope="session")
def tiny_network() -> Network:
    """A 2-16-3 untrained dense network (fast, deterministic)."""
    return dense_network([2, 6, 3], seed=0, name="tiny")


@pytest.fixture(scope="session")
def small_network() -> Network:
    """A 4-8-6-3 untrained dense network used by the bound/verifier tests."""
    return dense_network([4, 8, 6, 3], seed=1, name="small")


@pytest.fixture(scope="session")
def conv_network() -> Network:
    """A small convolutional network over 1x6x6 images."""
    layers = [Conv2d(1, 2, kernel_size=3, stride=1, padding=1, seed=2), ReLU(),
              Flatten(), Dense(2 * 6 * 6, 8, seed=3), ReLU(), Dense(8, 3, seed=4)]
    return Network(layers, (1, 6, 6), name="conv-small")


@pytest.fixture(scope="session")
def trained_network():
    """A trained classifier over the blob dataset, with its dataset.

    Training makes the ReLU stability pattern realistic, which several BaB
    and experiment tests rely on.
    """
    dataset = make_blob_dataset(count=160, size=5, num_classes=3, seed=7)
    layers = [Flatten(), Dense(25, 12, seed=0), ReLU(), Dense(12, 10, seed=1), ReLU(),
              Dense(10, 3, seed=2)]
    network = Network(layers, dataset.image_shape, name="trained-blobs")
    train_network(network, dataset.inputs, dataset.labels,
                  TrainingConfig(epochs=15, batch_size=32, seed=0))
    return network, dataset


@pytest.fixture()
def small_spec(small_network):
    """A robustness spec around a fixed point for the small dense network."""
    reference = np.array([0.45, 0.55, 0.5, 0.4])
    label = int(small_network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, 0.08, label, 3, name="small-spec")


@pytest.fixture()
def node_budget() -> Budget:
    """A generous node-only budget for deterministic verifier tests."""
    return Budget(max_nodes=2000)


def make_robustness_problem(network: Network, reference: np.ndarray, epsilon: float):
    """Helper used by several test modules to build a robustness problem."""
    reference = np.asarray(reference, dtype=float).reshape(-1)
    label = int(network.predict(reference.reshape(1, -1))[0])
    num_classes = network.output_dim
    return local_robustness_spec(reference, epsilon, label, num_classes)
