"""Tests for repro.nn.training."""

import numpy as np
import pytest

from repro.datasets import make_blob_dataset
from repro.nn import dense_network
from repro.nn.training import (
    Trainer,
    TrainingConfig,
    accuracy,
    cross_entropy_loss,
    softmax,
    train_network,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), np.ones(4))

    def test_invariant_to_shift(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), atol=1e-12)

    def test_numerically_stable_for_large_inputs(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_wrong_prediction_has_high_loss(self):
        logits = np.array([[10.0, -10.0]])
        loss, _ = cross_entropy_loss(logits, np.array([1]))
        assert loss > 5.0

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = cross_entropy_loss(logits, labels)
        numeric = np.zeros_like(logits)
        eps = 1e-6
        for index in np.ndindex(logits.shape):
            perturbed = logits.copy()
            perturbed[index] += eps
            up, _ = cross_entropy_loss(perturbed, labels)
            perturbed[index] -= 2 * eps
            down, _ = cross_entropy_loss(perturbed, labels)
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0, 1, 2]))


class TestTrainingConfig:
    def test_rejects_bad_optimizer(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_rejects_nonpositive_learning_rate(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)


class TestTrainer:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_blob_dataset(count=120, size=5, num_classes=3, seed=3)

    def test_loss_decreases(self, dataset):
        network = dense_network([25, 12, 3], seed=0)
        history = train_network(network, dataset.inputs, dataset.labels,
                                TrainingConfig(epochs=10, seed=0))
        assert history.losses[-1] < history.losses[0]

    def test_accuracy_improves_over_chance(self, dataset):
        network = dense_network([25, 12, 3], seed=0)
        history = train_network(network, dataset.inputs, dataset.labels,
                                TrainingConfig(epochs=12, seed=0))
        assert history.final_accuracy > 0.6

    def test_adam_optimizer_trains(self, dataset):
        network = dense_network([25, 10, 3], seed=1)
        history = train_network(network, dataset.inputs, dataset.labels,
                                TrainingConfig(epochs=8, optimizer="adam",
                                               learning_rate=0.01, seed=0))
        assert history.losses[-1] < history.losses[0]

    def test_zero_epochs_leaves_network_unchanged(self, dataset):
        network = dense_network([25, 8, 3], seed=2)
        before = network.forward(dataset.inputs[:4])
        history = train_network(network, dataset.inputs, dataset.labels,
                                TrainingConfig(epochs=0))
        after = network.forward(dataset.inputs[:4])
        np.testing.assert_allclose(before, after)
        assert history.final_loss is None

    def test_fit_invalidates_lowered_cache(self, dataset):
        network = dense_network([25, 8, 3], seed=3)
        stale = network.lowered()
        train_network(network, dataset.inputs, dataset.labels, TrainingConfig(epochs=1))
        assert network.lowered() is not stale

    def test_mismatched_labels_rejected(self, dataset):
        network = dense_network([25, 8, 3], seed=4)
        with pytest.raises(ValueError):
            Trainer(network).fit(dataset.inputs, dataset.labels[:-1])

    def test_accuracy_helper_range(self, dataset):
        network = dense_network([25, 8, 3], seed=5)
        value = accuracy(network, dataset.inputs, dataset.labels)
        assert 0.0 <= value <= 1.0
