"""Tests for repro.bab.baseline (the naive BaB verifier)."""

import numpy as np
import pytest

from repro.bab.baseline import BaBBaselineVerifier
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.milp import MilpVerifier
from repro.verifiers.result import VerificationStatus


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestBaBBaseline:
    def test_verifies_small_epsilon(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 1e-3)
        result = BaBBaselineVerifier().verify(small_network, spec, Budget(max_nodes=200))
        assert result.status == VerificationStatus.VERIFIED

    def test_falsifies_large_epsilon_with_valid_counterexample(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(6)
        spec = local_robustness_spec(image.reshape(-1), 0.9, label, dataset.num_classes)
        result = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=500))
        assert result.status == VerificationStatus.FALSIFIED
        assert spec.is_counterexample(network, result.counterexample)

    @pytest.mark.parametrize("epsilon", [0.05, 0.15, 0.3])
    def test_agrees_with_milp_oracle(self, epsilon, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(7)
        spec = local_robustness_spec(image.reshape(-1), epsilon, label,
                                     dataset.num_classes)
        oracle = MilpVerifier().verify(network, spec)
        result = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=3000))
        if result.solved and oracle.solved:
            assert result.status == oracle.status

    def test_respects_node_budget(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(8)
        spec = local_robustness_spec(image.reshape(-1), 0.2, label, dataset.num_classes)
        result = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=20))
        assert result.nodes_explored <= 25  # a couple of nodes of slack for the leaf LP

    def test_timeout_reported_when_budget_tiny(self, trained_network):
        network, dataset = trained_network
        results = []
        for index in range(6):
            image, label = dataset.sample(index)
            spec = local_robustness_spec(image.reshape(-1), 0.25, label,
                                         dataset.num_classes)
            result = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=3))
            results.append(result.status)
        # With a 3-node budget at least one non-trivial problem must time out.
        assert any(status == VerificationStatus.TIMEOUT for status in results) or \
            all(status.is_conclusive for status in results)

    def test_dfs_variant_reaches_same_verdict(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(9)
        spec = local_robustness_spec(image.reshape(-1), 0.12, label, dataset.num_classes)
        bfs = BaBBaselineVerifier(exploration="bfs").verify(network, spec,
                                                            Budget(max_nodes=2000))
        dfs = BaBBaselineVerifier(exploration="dfs").verify(network, spec,
                                                            Budget(max_nodes=2000))
        if bfs.solved and dfs.solved:
            assert bfs.status == dfs.status

    def test_invalid_exploration_rejected(self):
        with pytest.raises(ValueError):
            BaBBaselineVerifier(exploration="best")

    def test_extras_contain_statistics(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        result = BaBBaselineVerifier().verify(small_network, spec, Budget(max_nodes=300))
        assert "tree_size" in result.extras
        assert result.extras["tree_size"] == result.nodes_explored

    @pytest.mark.parametrize("heuristic", ["widest", "babsr", "deepsplit", "random"])
    def test_heuristics_do_not_change_the_verdict(self, heuristic, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(10)
        spec = local_robustness_spec(image.reshape(-1), 0.1, label, dataset.num_classes)
        default = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=2000))
        other = BaBBaselineVerifier(heuristic=heuristic).verify(network, spec,
                                                                Budget(max_nodes=2000))
        if default.solved and other.solved:
            assert default.status == other.status

    def test_without_lp_leaf_refinement_never_claims_false_verification(self,
                                                                         trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(11)
        spec = local_robustness_spec(image.reshape(-1), 0.3, label, dataset.num_classes)
        oracle = MilpVerifier().verify(network, spec)
        result = BaBBaselineVerifier(lp_leaf_refinement=False).verify(
            network, spec, Budget(max_nodes=2000))
        if oracle.status == VerificationStatus.FALSIFIED:
            assert result.status != VerificationStatus.VERIFIED
        if oracle.status == VerificationStatus.VERIFIED:
            assert result.status != VerificationStatus.FALSIFIED
