"""Tests for repro.verifiers.milp (complete MILP verifier and leaf LP)."""

import itertools

import numpy as np
import pytest

from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.nn import dense_network
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.appver import ApproximateVerifier
from repro.verifiers.milp import MilpVerifier, solve_leaf_lp
from repro.verifiers.result import VerificationStatus


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


def brute_force_min_margin(network, spec, samples=4000, seed=0):
    """Dense random + corner sampling of the true margin (upper bound of the min)."""
    lowered = network.lowered()
    points = spec.input_box.sample(seed, count=samples)
    margins = [spec.output_spec.margin(lowered.forward(p)[0]) for p in points]
    corners = itertools.product(*[(low, high) for low, high
                                  in zip(spec.input_box.lower, spec.input_box.upper)])
    for corner in itertools.islice(corners, 256):
        margins.append(spec.output_spec.margin(lowered.forward(np.array(corner))[0]))
    return min(margins)


class TestMilpVerifier:
    @pytest.mark.parametrize("epsilon", [0.02, 0.1, 0.3])
    def test_verdict_consistent_with_sampling(self, epsilon):
        network = dense_network([3, 6, 5, 3], seed=4)
        spec = problem(network, [0.5, 0.4, 0.6], epsilon)
        result = MilpVerifier().verify(network, spec)
        sampled_min = brute_force_min_margin(network, spec)
        if sampled_min < -1e-6:
            # Sampling found a real counterexample, so MILP must falsify.
            assert result.status == VerificationStatus.FALSIFIED
        if result.status == VerificationStatus.VERIFIED:
            assert sampled_min >= -1e-6

    def test_falsified_returns_valid_counterexample(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(3)
        spec = local_robustness_spec(image.reshape(-1), 0.8, label, dataset.num_classes)
        result = MilpVerifier().verify(network, spec)
        if result.status == VerificationStatus.FALSIFIED:
            assert spec.is_counterexample(network, result.counterexample)

    def test_verified_when_root_bound_suffices(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 1e-4)
        result = MilpVerifier().verify(small_network, spec)
        assert result.status == VerificationStatus.VERIFIED
        assert result.nodes_explored == 1  # only the DeepPoly pre-pass

    def test_agrees_with_exhaustive_corner_check_tiny_network(self):
        # With one input dimension, the piecewise-linear margin attains its
        # minimum at a breakpoint or an endpoint; dense sampling is reliable.
        network = dense_network([1, 4, 2], seed=2)
        reference = np.array([0.5])
        label = int(network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.5, label, 2)
        xs = np.linspace(0.0, 1.0, 20001).reshape(-1, 1)
        margins = [spec.output_spec.margin(o) for o in network.forward(xs)]
        truly_violated = min(margins) < -1e-9
        result = MilpVerifier().verify(network, spec)
        assert (result.status == VerificationStatus.FALSIFIED) == truly_violated


class TestLeafLp:
    def _fully_split(self, network, spec):
        appver = ApproximateVerifier(network, spec)
        outcome = appver.evaluate()
        splits = SplitAssignment.empty()
        report = outcome.report
        while report.unstable_neurons(splits):
            layer, unit = report.unstable_neurons(splits)[0]
            splits = splits.with_split(ReluSplit(layer, unit, ACTIVE))
            report = appver.evaluate(splits).report
        return splits, report

    def test_leaf_lp_requires_full_phase_decision(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.3)
        appver = ApproximateVerifier(small_network, spec)
        outcome = appver.evaluate()
        if outcome.report.unstable_neurons():
            with pytest.raises(ValueError):
                solve_leaf_lp(small_network.lowered(), spec.input_box, spec.output_spec,
                              SplitAssignment.empty(), outcome.report)

    def test_leaf_lp_value_is_sound_for_the_leaf_region(self):
        network = dense_network([2, 4, 3, 2], seed=8)
        spec = problem(network, [0.5, 0.5], 0.35)
        splits, report = self._fully_split(network, spec)
        optimum = solve_leaf_lp(network.lowered(), spec.input_box, spec.output_spec,
                                splits, report)
        if not optimum.feasible:
            return
        lowered = network.lowered()
        for sample in spec.input_box.sample(0, count=500):
            pre = lowered.pre_activations(sample)
            if not splits.satisfied_by(pre):
                continue
            margin = spec.output_spec.margin(lowered.forward(sample)[0])
            assert margin >= optimum.value - 1e-6

    def test_leaf_lp_minimizer_attains_value(self):
        network = dense_network([2, 4, 3, 2], seed=8)
        spec = problem(network, [0.5, 0.5], 0.35)
        splits, report = self._fully_split(network, spec)
        optimum = solve_leaf_lp(network.lowered(), spec.input_box, spec.output_spec,
                                splits, report)
        if not optimum.feasible or optimum.minimizer is None:
            return
        assert spec.input_box.contains(optimum.minimizer, tolerance=1e-6)
        # The LP value is a lower bound on the true margin at the minimiser
        # (they coincide when the minimiser satisfies the leaf's phase pattern).
        margin = spec.margin(network, spec.input_box.clip(optimum.minimizer))
        assert margin >= optimum.value - 1e-6


class TestBudgetHandling:
    def test_timeout_status_when_budget_zero(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(5)
        spec = local_robustness_spec(image.reshape(-1), 0.4, label, dataset.num_classes)
        result = MilpVerifier().verify(network, spec, Budget(max_nodes=1))
        assert result.status in (VerificationStatus.TIMEOUT, VerificationStatus.VERIFIED,
                                 VerificationStatus.FALSIFIED)
