"""The docs/ subsystem stays wired: links resolve and CI's checker works."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import undocumented  # noqa: E402
from check_markdown_links import (  # noqa: E402
    check_file,
    github_slug,
    heading_slugs,
    markdown_files,
)


class TestRepositoryDocs:
    def test_docs_directory_exists_with_required_pages(self):
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
        assert (REPO_ROOT / "docs" / "BATCHING.md").is_file()
        assert (REPO_ROOT / "docs" / "ENGINE.md").is_file()

    def test_readme_links_the_docs_pages(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/BATCHING.md" in readme
        assert "docs/ENGINE.md" in readme

    def test_architecture_links_the_engine_page(self):
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8")
        assert "ENGINE.md" in architecture

    def test_no_broken_links_in_tracked_markdown(self):
        targets = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md",
                   REPO_ROOT / "docs"]
        problems = []
        for path in markdown_files([str(target) for target in targets]):
            problems.extend(check_file(path))
        assert problems == []


class TestLinkChecker:
    def test_github_slug(self):
        assert github_slug("The cache key scheme") == "the-cache-key-scheme"
        assert github_slug("Batching: the batch axis") == "batching-the-batch-axis"
        assert github_slug("`code` and *emphasis*") == "code-and-emphasis"

    def test_detects_missing_file(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md)\n", encoding="utf-8")
        problems = check_file(page)
        assert len(problems) == 1
        assert problems[0][1] == "missing.md"

    def test_detects_missing_anchor(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Present\n", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text("[ok](target.md#present) [bad](target.md#absent)\n",
                        encoding="utf-8")
        problems = check_file(page)
        assert [problem[1] for problem in problems] == ["target.md#absent"]

    def test_accepts_valid_relative_and_anchor_links(self, tmp_path):
        target = tmp_path / "sub" / "target.md"
        target.parent.mkdir()
        target.write_text("## A Section\n", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text("[a](sub/target.md) [b](sub/target.md#a-section) "
                        "[c](#local)\n\n# Local\n", encoding="utf-8")
        assert check_file(page) == []

    def test_skips_external_links(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[x](https://example.com/nope) [y](mailto:a@b.c)\n",
                        encoding="utf-8")
        assert check_file(page) == []

    def test_heading_slugs_skip_code_fences(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Real\n```\n# not a heading\n```\n", encoding="utf-8")
        assert heading_slugs(page) == {"real"}

    def test_duplicate_headings_get_numbered_suffixes(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Setup\n\ntext\n\n# Setup\n\n# Setup\n",
                          encoding="utf-8")
        assert heading_slugs(target) == {"setup", "setup-1", "setup-2"}
        page = tmp_path / "page.md"
        page.write_text("[a](target.md#setup-2) [b](target.md#setup-3)\n",
                        encoding="utf-8")
        assert [problem[1] for problem in check_file(page)] == ["target.md#setup-3"]

    def test_setext_headings_are_anchors(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("Big Title\n=========\n\nSmaller One\n---\n\n"
                        "[a](#big-title) [b](#smaller-one) [c](#absent)\n",
                        encoding="utf-8")
        assert heading_slugs(page) >= {"big-title", "smaller-one"}
        assert [problem[1] for problem in check_file(page)] == ["#absent"]

    def test_html_anchors_are_recognised(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text('<a name="push-back"></a>\n\nSee [x](#push-back) '
                        "and [y](#missing)\n", encoding="utf-8")
        assert [problem[1] for problem in check_file(page)] == ["#missing"]


class TestDocstringChecker:
    def test_flags_missing_public_docstrings(self, tmp_path):
        module = tmp_path / "sample.py"
        module.write_text(
            '"""Module doc."""\n\n'
            "def documented():\n    \"\"\"ok\"\"\"\n\n"
            "def undocumented_function():\n    pass\n\n"
            "def _private():\n    pass\n\n"
            "class Thing:\n"
            "    \"\"\"ok\"\"\"\n\n"
            "    def method(self):\n        pass\n\n"
            "    def __repr__(self):\n        return ''\n",
            encoding="utf-8")
        names = [name for _, _, name in undocumented(module)]
        assert names == ["undocumented_function", "Thing.method"]

    def test_flags_missing_module_docstring(self, tmp_path):
        module = tmp_path / "bare.py"
        module.write_text("x = 1\n", encoding="utf-8")
        assert [name for _, _, name in undocumented(module)] == ["<module>"]

    def test_engine_and_verifier_surfaces_are_documented(self):
        targets = [REPO_ROOT / "src" / "repro" / "engine",
                   REPO_ROOT / "src" / "repro" / "verifiers",
                   REPO_ROOT / "src" / "repro" / "core" / "abonn.py",
                   REPO_ROOT / "src" / "repro" / "bab" / "baseline.py",
                   REPO_ROOT / "src" / "repro" / "baselines"]
        problems = []
        for target in targets:
            files = ([target] if target.is_file()
                     else sorted(target.rglob("*.py")))
            for path in files:
                problems.extend(undocumented(path))
        assert problems == []
