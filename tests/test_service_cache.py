"""Cross-request cache reuse and isolation in the verification service.

The service's speedup is reuse, not parallelism: jobs sharing a problem
fingerprint share one :class:`~repro.service.pool.CacheBundle`, so a repeat
job serves its bound passes and leaf LPs from the warm bundle.  These tests
pin the contract in both directions — same fingerprint ⇒ observable nonzero
hit deltas on the repeat (and results equal to a cold solo run), different
fingerprints ⇒ disjoint bundles and a cold second job — plus the
thread-safety of the shared caches' counters under concurrent hammering.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.bounds.cache import BoundCache, LpCache
from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import ServiceConfig, VerificationService
from repro.utils import Budget

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


#: Branches (~13 nodes) and resolves leaf LPs within BUDGET_NODES, so a
#: warm repeat observes both bound-report hits and leaf-LP hits.
PROBLEM_LP = _problem(1, [6, 10, 8, 4], [0.5] * 6, 0.1)
PROBLEM_OTHER = _problem(3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12)


def _solo(problem):
    network, spec = problem
    return AbonnVerifier().verify(network, spec,
                                  Budget(max_nodes=BUDGET_NODES))


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


class TestSameFingerprintReuse:
    def test_repeat_job_hits_the_shared_bundle(self):
        service = VerificationService(ServiceConfig(pool_size=1))
        first = service.submit(*PROBLEM_LP,
                               budget=Budget(max_nodes=BUDGET_NODES))
        second = service.submit(*PROBLEM_LP,
                                budget=Budget(max_nodes=BUDGET_NODES))
        results = {done.job_id: done for done in service.as_completed()}
        assert len(service.pool) == 1  # one fingerprint, one bundle

        cold, warm = results[first], results[second]
        assert cold.ok and warm.ok
        # The repeat serves its bound reports and leaf LPs from the bundle
        # the first job filled.
        assert warm.cache_stats["bound_report_hits"] > 0
        assert warm.cache_stats["lp_hits"] > 0
        assert warm.cache_stats["lp_solves"] == 0
        # Per-job deltas are mirrored into the result's extras block.
        service_extras = warm.result.extras["service"]
        assert service_extras["cache_stats"] == warm.cache_stats
        assert service_extras["fingerprint"] == warm.fingerprint

        # Warm-model memo: the second fingerprint lookup reused the digest.
        assert service.pool.model_cache_hits > 0

    def test_shared_cache_results_equal_cold_solo_results(self):
        """Hits return exactly what recomputation would have produced."""
        solo = _solo(PROBLEM_LP)
        service = VerificationService(ServiceConfig(pool_size=1))
        for _ in range(3):
            service.submit(*PROBLEM_LP, budget=Budget(max_nodes=BUDGET_NODES))
        for done in service.as_completed():
            assert done.ok
            _assert_identical(done.result, solo)


class TestFingerprintIsolation:
    def test_different_fingerprints_get_disjoint_bundles(self):
        service = VerificationService(ServiceConfig(pool_size=1))
        first = service.submit(*PROBLEM_LP,
                               budget=Budget(max_nodes=BUDGET_NODES))
        other = service.submit(*PROBLEM_OTHER,
                               budget=Budget(max_nodes=BUDGET_NODES))
        results = {done.job_id: done for done in service.as_completed()}

        assert len(service.pool) == 2
        a, b = results[first], results[other]
        assert a.fingerprint != b.fingerprint
        bundle_a = service.pool.bundle(a.fingerprint)
        bundle_b = service.pool.bundle(b.fingerprint)
        assert bundle_a is not bundle_b
        assert bundle_a.lp_cache is not bundle_b.lp_cache
        assert bundle_a.bound_cache is not bundle_b.bound_cache

        # The second job ran cold: nothing of the first problem's traffic
        # was visible to it.
        assert b.cache_stats["bound_report_hits"] == 0
        assert b.cache_stats["lp_hits"] == 0

    def test_epsilon_change_changes_the_fingerprint(self):
        network, _ = PROBLEM_LP
        spec_small = make_robustness_problem(network, [0.5] * 6, 0.1)
        spec_large = make_robustness_problem(network, [0.5] * 6, 0.2)
        service = VerificationService()
        fp_small = service.pool.fingerprint_for(network, spec_small)
        fp_large = service.pool.fingerprint_for(network, spec_large)
        assert fp_small != fp_large
        # Same network though: the weight digest was computed exactly once.
        assert service.pool.model_cache_misses == 1
        assert service.pool.model_cache_hits == 1


class TestCacheThreadSafety:
    """The shared caches' counters stay exact under concurrent access.

    The service itself is single-threaded, but the bundles are documented as
    safe to share (``cache.py`` serialises all public methods behind a
    lock); these hammers would lose counter increments and corrupt the LRU
    under the pre-lock implementation.
    """

    def test_lp_cache_counters_exact_under_threads(self):
        cache = LpCache(max_entries=64)
        threads, per_thread = 8, 400

        def hammer(tid: int) -> None:
            for i in range(per_thread):
                key = ("k", (tid + i) % 48)  # fits: every lookup can hit
                if cache.get(key) is None:
                    cache.put(key, object())
                    cache.record_solve()
                cache.record_hit()  # the batch-alias path

        workers = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        total = threads * per_thread
        # One get + one record_hit per iteration; every counter is exact.
        assert cache.stats.hits + cache.stats.misses == 2 * total
        assert cache.stats.hits >= total
        assert cache.stats.solves == cache.stats.misses
        assert len(cache) <= 64

    def test_bound_cache_counters_exact_under_threads(self):
        cache = BoundCache(max_entries=128)
        threads, per_thread = 8, 400

        def hammer(tid: int) -> None:
            for i in range(per_thread):
                key = (("layer", (tid + i) % 64),)
                if cache.get_report(key, True) is None:
                    cache.put_report(key, True, {"tid": tid})

        workers = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        stats = cache.stats
        total = threads * per_thread
        assert stats.report_hits + stats.report_misses == total
        assert len(cache) <= 128


class TestPoolThreadSafety:
    """The pool's own bookkeeping stays exact under concurrent workers.

    The threaded transport fingerprints on submitting threads and fetches /
    quarantines bundles on worker threads; these hammers pin the pool-level
    guarantees — exact memo counters, one bundle per fingerprint between
    quarantines, and safe mid-run discards.
    """

    def test_fingerprint_memo_counters_exact_under_threads(self):
        pool = VerificationService().pool
        network, spec = PROBLEM_LP
        expected = pool.fingerprint_for(network, spec)  # 1 recorded miss
        threads, per_thread = 8, 50
        fingerprints = []
        lock = threading.Lock()

        def hammer() -> None:
            for _ in range(per_thread):
                fingerprint = pool.fingerprint_for(network, spec)
                with lock:
                    fingerprints.append(fingerprint)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        assert set(fingerprints) == {expected}
        # Every lookup recorded exactly one hit or miss — no lost updates.
        total = threads * per_thread + 1
        assert pool.model_cache_hits + pool.model_cache_misses == total
        # The memo was warm before the hammer, so everything after is a hit.
        assert pool.model_cache_misses == 1

    def test_concurrent_bundle_lookups_observe_one_instance(self):
        pool = VerificationService().pool
        fingerprint = "a" * 64
        threads, per_thread = 8, 200
        seen = set()
        lock = threading.Lock()
        start = threading.Barrier(threads)

        def hammer() -> None:
            start.wait()
            for _ in range(per_thread):
                bundle = pool.bundle(fingerprint)
                with lock:
                    seen.add(id(bundle))

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        # Without discards there is exactly one bundle, ever.
        assert len(seen) == 1
        assert len(pool) == 1

    def test_mid_run_quarantine_bounds_distinct_bundles(self):
        """Concurrent jobs racing a quarantine see at most 1 + discards bundles."""
        pool = VerificationService().pool
        fingerprint = "b" * 64
        threads, per_thread, discards = 6, 200, 3
        seen = set()
        lock = threading.Lock()
        start = threading.Barrier(threads + 1)
        discarded = 0

        def hammer() -> None:
            start.wait()
            for _ in range(per_thread):
                bundle = pool.bundle(fingerprint)
                with lock:
                    seen.add(id(bundle))

        def quarantine() -> None:
            nonlocal discarded
            start.wait()
            for _ in range(discards):
                if pool.discard(fingerprint):
                    discarded += 1

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        workers.append(threading.Thread(target=quarantine))
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        # Each successful discard can introduce at most one fresh bundle.
        assert 1 <= len(seen) <= 1 + discarded
        # The fingerprint still resolves (recreated cold on demand).
        assert pool.bundle(fingerprint) is pool.bundle(fingerprint)

    def test_pool_stats_sum_exactly_under_threads(self):
        pool = VerificationService().pool
        problems = [PROBLEM_LP, PROBLEM_OTHER]
        threads, per_thread = 6, 40

        def hammer(tid: int) -> None:
            network, spec = problems[tid % len(problems)]
            for _ in range(per_thread):
                pool.fingerprint_for(network, spec)

        workers = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        stats = pool.stats()
        total = threads * per_thread
        assert (stats["model_cache_hits"]
                + stats["model_cache_misses"]) == total
        # Distinct networks may each record a handful of racing misses (the
        # digest is computed outside the lock), never more than one per
        # thread that raced the cold memo.
        assert stats["model_cache_misses"] <= threads
        assert stats["model_cache_misses"] >= len(problems)
