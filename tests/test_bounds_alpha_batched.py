"""Batched α-CROWN must match the per-element SPSA loop.

``AlphaCrownAnalyzer.analyze_batch`` shares one perturbation draw per
iteration across the batch — valid because the per-element loop reseeds its
RNG for every sub-problem and therefore draws identical direction
sequences.  These tests pin that equivalence (within batched-matmul float
noise) and the soundness of the batched bounds.
"""

import numpy as np
import pytest

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig
from repro.bounds.deeppoly import DeepPolyAnalyzer
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.specs.robustness import local_robustness_spec
from repro.verifiers.appver import ApproximateVerifier

TOLERANCE = 1e-7


def _problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


def _split_workload(network, spec, include_infeasible=True):
    """The empty assignment, single splits on unstable neurons, and (optionally)
    an infeasible split forcing a stable-off neuron ACTIVE."""
    probe = ApproximateVerifier(network, spec, use_cache=False)
    report = probe.evaluate().report
    splits_list = [SplitAssignment.empty()]
    for layer, unit in report.unstable_neurons()[:3]:
        for phase in (ACTIVE, INACTIVE):
            splits_list.append(SplitAssignment.from_splits(
                [ReluSplit(layer, unit, phase)]))
    if include_infeasible:
        for layer, bounds in enumerate(report.pre_activation_bounds):
            negative = np.where(bounds.upper < 0)[0]
            if len(negative):
                splits_list.append(SplitAssignment.from_splits(
                    [ReluSplit(layer, int(negative[0]), ACTIVE)]))
                break
    return splits_list


class TestAlphaCrownBatched:
    def test_matches_per_element_loop(self, small_network):
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        analyzer = AlphaCrownAnalyzer(small_network.lowered(),
                                      AlphaCrownConfig(iterations=8))
        splits_list = _split_workload(small_network, spec)
        sequential = [analyzer.analyze(spec.input_box, splits=splits,
                                       spec=spec.output_spec)
                      for splits in splits_list]
        batched = analyzer.analyze_batch(spec.input_box, splits_list,
                                         spec=spec.output_spec)
        assert len(batched) == len(sequential)
        for loop_report, batch_report in zip(sequential, batched):
            assert batch_report.method == "alpha-crown"
            assert batch_report.infeasible == loop_report.infeasible
            if loop_report.infeasible:
                assert batch_report.p_hat == loop_report.p_hat == float("inf")
            else:
                assert batch_report.p_hat == pytest.approx(loop_report.p_hat,
                                                           abs=TOLERANCE)

    def test_batched_improves_on_deeppoly(self, small_network):
        """Optimised slopes must never be looser than the DeepPoly default."""
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        lowered = small_network.lowered()
        analyzer = AlphaCrownAnalyzer(lowered, AlphaCrownConfig(iterations=8))
        deeppoly = DeepPolyAnalyzer(lowered)
        splits_list = _split_workload(small_network, spec,
                                      include_infeasible=False)
        batched = analyzer.analyze_batch(spec.input_box, splits_list,
                                         spec=spec.output_spec)
        for splits, report in zip(splits_list, batched):
            baseline = deeppoly.analyze(spec.input_box, splits=splits,
                                        spec=spec.output_spec)
            assert report.p_hat >= baseline.p_hat - TOLERANCE

    def test_no_spec_and_zero_iterations_fall_back(self, small_network):
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        lowered = small_network.lowered()
        splits_list = _split_workload(small_network, spec,
                                      include_infeasible=False)[:3]
        no_spec = AlphaCrownAnalyzer(lowered).analyze_batch(
            spec.input_box, splits_list)
        assert all(report.method == "alpha-crown" for report in no_spec)
        assert all(report.p_hat is None for report in no_spec)
        frozen = AlphaCrownAnalyzer(lowered, AlphaCrownConfig(iterations=0))
        batched = frozen.analyze_batch(spec.input_box, splits_list,
                                       spec=spec.output_spec)
        for splits, report in zip(splits_list, batched):
            loop = frozen.analyze(spec.input_box, splits=splits,
                                  spec=spec.output_spec)
            assert report.p_hat == pytest.approx(loop.p_hat, abs=TOLERANCE)

    def test_empty_batch(self, small_network):
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        analyzer = AlphaCrownAnalyzer(small_network.lowered())
        assert analyzer.analyze_batch(spec.input_box, [],
                                      spec=spec.output_spec) == []

    def test_p_hat_remains_sound(self, small_network):
        """Fuzz: the batched optimised bound stays below the true margin."""
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.12)
        analyzer = AlphaCrownAnalyzer(small_network.lowered(),
                                      AlphaCrownConfig(iterations=6))
        report = analyzer.analyze_batch(spec.input_box,
                                        [SplitAssignment.empty()],
                                        spec=spec.output_spec)[0]
        for sample in spec.input_box.sample(0, count=200):
            assert spec.margin(small_network, sample) >= report.p_hat - 1e-7


class TestAppVerAlphaBatched:
    def test_evaluate_batch_matches_evaluate(self, small_network):
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        verifier = ApproximateVerifier(small_network, spec, "alpha-crown")
        splits_list = _split_workload(small_network, spec)
        sequential = [verifier.evaluate(splits) for splits in splits_list]
        batched = verifier.evaluate_batch(splits_list)
        for loop_outcome, batch_outcome in zip(sequential, batched):
            if np.isfinite(loop_outcome.p_hat):
                assert batch_outcome.p_hat == pytest.approx(loop_outcome.p_hat,
                                                            abs=TOLERANCE)
            else:
                assert batch_outcome.p_hat == loop_outcome.p_hat
            assert (batch_outcome.is_valid_counterexample
                    == loop_outcome.is_valid_counterexample)
        assert verifier.num_calls == 2 * len(splits_list)

    def test_batch_histogram_records_realised_sizes(self, small_network):
        spec = _problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        verifier = ApproximateVerifier(small_network, spec)
        verifier.evaluate_batch([SplitAssignment.empty()] * 3)
        verifier.evaluate_batch([SplitAssignment.empty()] * 3)
        verifier.evaluate_batch([SplitAssignment.empty()] * 5)
        verifier.evaluate_batch([])  # empty batches are not recorded
        stats = verifier.batch_stats()
        assert stats["batch_histogram"] == {3: 2, 5: 1}
        assert stats["batched_calls"] == 3
        assert stats["mean_realised_batch"] == pytest.approx(11 / 3)
        assert verifier.cache_stats()["mean_realised_batch"] == pytest.approx(11 / 3)
