"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets import Dataset, make_blob_dataset, make_stripe_dataset, train_test_split


class TestBlobDataset:
    def test_shapes_and_range(self):
        dataset = make_blob_dataset(count=50, size=7, num_classes=4, seed=0)
        assert dataset.inputs.shape == (50, 1, 7, 7)
        assert dataset.labels.shape == (50,)
        assert dataset.inputs.min() >= 0.0 and dataset.inputs.max() <= 1.0

    def test_labels_cover_all_classes(self):
        dataset = make_blob_dataset(count=40, num_classes=4, seed=1)
        assert set(dataset.labels) == {0, 1, 2, 3}

    def test_deterministic_for_seed(self):
        a = make_blob_dataset(count=20, seed=5)
        b = make_blob_dataset(count=20, seed=5)
        np.testing.assert_allclose(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_blob_dataset(count=20, seed=1)
        b = make_blob_dataset(count=20, seed=2)
        assert not np.allclose(a.inputs, b.inputs)

    def test_classes_are_separable_without_noise(self):
        dataset = make_blob_dataset(count=40, num_classes=3, noise=0.0, seed=0)
        # Prototypes of distinct classes must differ substantially.
        class_means = [dataset.inputs[dataset.labels == c].mean(axis=0)
                       for c in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.abs(class_means[i] - class_means[j]).max() > 0.2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_blob_dataset(count=0)
        with pytest.raises(ValueError):
            make_blob_dataset(noise=-0.1)


class TestStripeDataset:
    def test_shapes(self):
        dataset = make_stripe_dataset(count=30, size=8, channels=3, num_classes=4, seed=0)
        assert dataset.inputs.shape == (30, 3, 8, 8)
        assert dataset.num_classes == 4

    def test_values_in_unit_interval(self):
        dataset = make_stripe_dataset(count=30, seed=0)
        assert dataset.inputs.min() >= 0.0 and dataset.inputs.max() <= 1.0

    def test_deterministic(self):
        a = make_stripe_dataset(count=16, seed=9)
        b = make_stripe_dataset(count=16, seed=9)
        np.testing.assert_allclose(a.inputs, b.inputs)


class TestDatasetContainer:
    def test_sample_returns_pair(self):
        dataset = make_blob_dataset(count=10, seed=0)
        image, label = dataset.sample(3)
        assert image.shape == dataset.image_shape
        assert isinstance(label, int)

    def test_sample_out_of_range(self):
        dataset = make_blob_dataset(count=10, seed=0)
        with pytest.raises(ValueError):
            dataset.sample(10)

    def test_subset(self):
        dataset = make_blob_dataset(count=10, seed=0)
        subset = dataset.subset(np.array([0, 2, 4]))
        assert subset.count == 3
        np.testing.assert_allclose(subset.inputs[1], dataset.inputs[2])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2, 2)), np.zeros(4, dtype=int), 2, "bad")


class TestTrainTestSplit:
    def test_sizes(self):
        dataset = make_blob_dataset(count=50, seed=0)
        train, test = train_test_split(dataset, train_fraction=0.8, seed=0)
        assert train.count == 40 and test.count == 10

    def test_disjoint_cover(self):
        dataset = make_blob_dataset(count=30, seed=0)
        train, test = train_test_split(dataset, train_fraction=0.7, seed=1)
        combined = np.concatenate([train.inputs, test.inputs])
        assert combined.shape[0] == dataset.count

    def test_invalid_fraction_rejected(self):
        dataset = make_blob_dataset(count=10, seed=0)
        with pytest.raises(ValueError):
            train_test_split(dataset, train_fraction=1.0)
