"""Regression tests for ``benchmarks/bench_service.py`` helpers.

The bench's replayability rests on one rule: every per-job random draw
comes from :func:`_job_rng`, a pure function of the job index — never from
numpy's global RNG.  A threaded bench run interleaves jobs
nondeterministically, so any dependence on global state would make two runs
draw different priorities and the transport comparison unreproducible.
These tests pin that rule without running the (slow) benchmark itself.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np

_BENCH_PATH = (Path(__file__).resolve().parent.parent
               / "benchmarks" / "bench_service.py")
_spec = importlib.util.spec_from_file_location("bench_service", _BENCH_PATH)
bench_service = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_service", bench_service)
_spec.loader.exec_module(bench_service)


class TestJobRng:
    def test_same_index_same_stream(self):
        draws_a = bench_service._job_rng(7).integers(0, 1_000_000, size=16)
        draws_b = bench_service._job_rng(7).integers(0, 1_000_000, size=16)
        assert (draws_a == draws_b).all()

    def test_distinct_indices_distinct_streams(self):
        draws = {tuple(bench_service._job_rng(index)
                       .integers(0, 1_000_000, size=8).tolist())
                 for index in range(32)}
        assert len(draws) == 32

    def test_immune_to_global_numpy_state(self):
        """Perturbing ``np.random`` between calls changes nothing."""
        np.random.seed(0)
        before = bench_service._job_rng(3).integers(0, 1_000_000, size=8)
        np.random.seed(12345)
        np.random.random(1000)  # burn global state
        after = bench_service._job_rng(3).integers(0, 1_000_000, size=8)
        assert (before == after).all()

    def test_drawing_from_job_rng_leaves_global_state_alone(self):
        np.random.seed(42)
        expected = np.random.random(4)
        np.random.seed(42)
        bench_service._job_rng(0).random(100)
        assert (np.random.random(4) == expected).all()


class TestTransportWorkload:
    def test_workload_is_replayable_across_global_perturbation(self):
        first = bench_service._transport_workload(smoke=True)
        np.random.seed(999)
        np.random.random(1000)
        second = bench_service._transport_workload(smoke=True)
        assert len(first) == len(second)
        for job_a, job_b in zip(first, second):
            assert job_a["family"] == job_b["family"]
            assert job_a["priority"] == job_b["priority"]
            assert (job_a["spec"].input_box.lower
                    == job_b["spec"].input_box.lower).all()
            assert (job_a["spec"].input_box.upper
                    == job_b["spec"].input_box.upper).all()

    def test_workload_priorities_come_from_the_job_index(self):
        jobs = bench_service._transport_workload(smoke=True)
        for index, job in enumerate(jobs):
            expected = int(bench_service._job_rng(index).integers(0, 5))
            assert job["priority"] == expected
