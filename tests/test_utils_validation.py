"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import require, require_finite_array, require_shape


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestRequireFiniteArray:
    def test_accepts_finite(self):
        out = require_finite_array([1, 2, 3], "x")
        assert out.dtype == float

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            require_finite_array([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            require_finite_array([np.inf], "x")


class TestRequireShape:
    def test_accepts_exact_shape(self):
        out = require_shape(np.zeros((2, 3)), (2, 3), "m")
        assert out.shape == (2, 3)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            require_shape(np.zeros((2, 3)), (3, 2), "m")
