"""Tests for repro.nn.zoo (the five benchmark model families)."""

import numpy as np
import pytest

from repro.nn.zoo import (
    FAMILY_ORDER,
    MODEL_FAMILIES,
    build_trained_model,
    clear_model_cache,
    family,
)


class TestFamilyRegistry:
    def test_five_families_match_the_paper(self):
        assert set(FAMILY_ORDER) == {"MNIST_L2", "MNIST_L4", "CIFAR_BASE",
                                     "CIFAR_WIDE", "CIFAR_DEEP"}
        assert set(MODEL_FAMILIES) == set(FAMILY_ORDER)

    def test_family_lookup(self):
        assert family("MNIST_L2").name == "MNIST_L2"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            family("MNIST_L8")

    def test_dense_families_use_blob_dataset(self):
        assert family("MNIST_L2").dataset_name == family("MNIST_L4").dataset_name

    def test_conv_families_use_stripe_dataset(self):
        assert family("CIFAR_BASE").dataset_name.startswith("stripes")


class TestArchitectures:
    @pytest.mark.parametrize("name", FAMILY_ORDER)
    def test_network_builds_and_runs(self, name):
        spec = family(name)
        dataset = spec.build_dataset(0)
        network = spec.build_network(dataset, 0)
        out = network.forward(dataset.inputs[:4])
        assert out.shape == (4, dataset.num_classes)

    def test_mnist_l4_is_deeper_than_l2(self):
        dataset = family("MNIST_L2").build_dataset(0)
        l2 = family("MNIST_L2").build_network(dataset, 0)
        l4 = family("MNIST_L4").build_network(dataset, 0)
        assert l4.lowered().num_relu_layers > l2.lowered().num_relu_layers

    def test_cifar_deep_has_more_relu_layers_than_base(self):
        dataset = family("CIFAR_BASE").build_dataset(0)
        base = family("CIFAR_BASE").build_network(dataset, 0)
        deep = family("CIFAR_DEEP").build_network(dataset, 0)
        assert deep.lowered().num_relu_layers > base.lowered().num_relu_layers

    def test_cifar_wide_has_more_neurons_than_base(self):
        dataset = family("CIFAR_BASE").build_dataset(0)
        base = family("CIFAR_BASE").build_network(dataset, 0)
        wide = family("CIFAR_WIDE").build_network(dataset, 0)
        assert wide.num_relu_neurons > base.num_relu_neurons


class TestTrainedModels:
    def test_trained_model_beats_chance(self):
        network, dataset = build_trained_model("MNIST_L2", seed=0)
        predictions = network.predict(dataset.inputs)
        assert np.mean(predictions == dataset.labels) > 0.5

    def test_cache_returns_same_object(self):
        first = build_trained_model("MNIST_L2", seed=0)
        second = build_trained_model("MNIST_L2", seed=0)
        assert first[0] is second[0]

    def test_cache_can_be_bypassed(self):
        cached = build_trained_model("MNIST_L2", seed=0)
        fresh = build_trained_model("MNIST_L2", seed=0, use_cache=False)
        assert cached[0] is not fresh[0]

    def test_clear_cache(self):
        first = build_trained_model("MNIST_L2", seed=0)
        clear_model_cache()
        second = build_trained_model("MNIST_L2", seed=0)
        assert first[0] is not second[0]
