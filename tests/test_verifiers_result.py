"""Tests for repro.verifiers.result."""

import numpy as np
import pytest

from repro.utils.timing import Budget
from repro.verifiers.result import (
    VerificationResult,
    VerificationStatus,
    Verifier,
    make_budget,
)


class TestVerificationStatus:
    def test_conclusive_statuses(self):
        assert VerificationStatus.VERIFIED.is_conclusive
        assert VerificationStatus.FALSIFIED.is_conclusive
        assert not VerificationStatus.TIMEOUT.is_conclusive
        assert not VerificationStatus.UNKNOWN.is_conclusive


class TestVerificationResult:
    def test_solved_reflects_status(self):
        solved = VerificationResult(VerificationStatus.VERIFIED, "v")
        unsolved = VerificationResult(VerificationStatus.TIMEOUT, "v")
        assert solved.solved and not unsolved.solved

    def test_summary_contains_key_fields(self):
        result = VerificationResult(VerificationStatus.FALSIFIED, "ABONN",
                                    elapsed_seconds=1.5, nodes_explored=42, bound=-0.3)
        text = result.summary()
        assert "ABONN" in text and "falsified" in text and "42" in text

    def test_check_counterexample(self, small_network, small_spec):
        violating = None
        for sample in small_spec.input_box.sample(0, count=500):
            if small_spec.margin(small_network, sample) < 0:
                violating = sample
                break
        result = VerificationResult(VerificationStatus.FALSIFIED, "v",
                                    counterexample=violating)
        if violating is None:
            assert not result.check_counterexample(small_network, small_spec)
        else:
            assert result.check_counterexample(small_network, small_spec)

    def test_check_counterexample_without_one(self, small_network, small_spec):
        result = VerificationResult(VerificationStatus.VERIFIED, "v")
        assert not result.check_counterexample(small_network, small_spec)


class TestMakeBudget:
    def test_default_budget(self):
        budget = make_budget(None, default_nodes=123)
        assert budget.max_nodes == 123
        assert budget.nodes == 0

    def test_copy_semantics(self):
        original = Budget(max_nodes=10)
        original.charge_node(5)
        budget = make_budget(original)
        assert budget.nodes == 0
        assert budget.max_nodes == 10
        # The original is untouched by the verifier run.
        assert original.nodes == 5


class TestVerifierInterface:
    def test_base_class_is_abstract(self, small_network, small_spec):
        with pytest.raises(NotImplementedError):
            Verifier().verify(small_network, small_spec)

    def test_repr(self):
        assert "Verifier" in repr(Verifier())
