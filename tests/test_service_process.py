"""The process transport's robustness layer, piece by piece.

The conformance suite (``test_service_scheduler.py``) proves the process
transport answers like every other backend, and the fault suite
(``test_service_faults.py``) SIGKILLs workers end to end.  This file pins
the *mechanisms* underneath: the :class:`~repro.service.jobs.RetryPolicy`
arithmetic (deterministic jitter, exponential growth, caps), the
:class:`~repro.service.supervisor.WorkerSupervisor` life cycle (liveness
detection, exit codes, hung-worker containment), and the degradation
ladder — spawn-unavailable hosts and crash-looping shards fall back to
in-process execution, unpicklable jobs fall back per-job, and worker
warmth is collected back into the parent pool at shutdown.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import (
    ProcessTransportUnavailable,
    RetryPolicy,
    ServiceConfig,
    VerificationService,
    WorkerCrashed,
    WorkerSupervisor,
)
from repro.service.supervisor import resolve_start_method
from repro.utils import Budget
from repro.verifiers.result import VerifierRun

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


PROBLEM_A = _problem(1, [4, 8, 6, 3], [0.45, 0.55, 0.5, 0.4], 0.08)
PROBLEM_LP = _problem(1, [6, 10, 8, 4], [0.5] * 6, 0.1)

SOLO_A = AbonnVerifier().verify(*PROBLEM_A, Budget(max_nodes=BUDGET_NODES))
SOLO_LP = AbonnVerifier().verify(*PROBLEM_LP, Budget(max_nodes=BUDGET_NODES))


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0,
                             max_backoff_seconds=0.5, jitter_fraction=0.0)
        delays = [policy.delay_seconds("job-1", attempt)
                  for attempt in (1, 2, 3, 4, 5)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert delays[3] == delays[4] == 0.5  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=1.0, backoff_multiplier=1.0,
                             jitter_fraction=0.25)
        first = policy.delay_seconds("job-7", 1)
        assert first == policy.delay_seconds("job-7", 1)  # pure function
        assert 0.75 <= first <= 1.25
        # Different jobs (and attempts) de-synchronise.
        spread = {round(policy.delay_seconds(f"job-{i}", 1), 6)
                  for i in range(16)}
        assert len(spread) > 1

    def test_retryable_kinds(self):
        policy = RetryPolicy()
        assert policy.retryable("WorkerCrash")
        assert not policy.retryable("ValueError")
        custom = RetryPolicy(retryable_kinds=("WorkerCrash", "TimeoutError"))
        assert custom.retryable("TimeoutError")

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_seconds": -0.1},
        {"backoff_multiplier": 0.5},
        {"max_backoff_seconds": -1.0},
        {"jitter_fraction": 1.0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


def _echo_main(conn) -> None:
    """A minimal supervised worker: echoes, sleeps, dies on request."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message.get("op")
        if op == "stop":
            return
        if op == "ping":
            conn.send({"op": "pong"})
            continue
        if op == "die":
            os.kill(os.getpid(), signal.SIGKILL)
        if op == "hang":
            time.sleep(message["seconds"])
        conn.send({"op": "echo", "payload": message.get("payload")})


class TestWorkerSupervisor:
    def test_round_trip_and_stop(self):
        supervisor = WorkerSupervisor(target=_echo_main)
        supervisor.start()
        try:
            assert supervisor.alive()
            assert supervisor.ping()
            reply = supervisor.request({"op": "echo", "payload": 42})
            assert reply == {"op": "echo", "payload": 42}
        finally:
            supervisor.stop()
        assert not supervisor.alive()

    def test_death_mid_request_raises_with_signal_exitcode(self):
        supervisor = WorkerSupervisor(target=_echo_main)
        supervisor.start()
        try:
            with pytest.raises(WorkerCrashed) as excinfo:
                supervisor.request({"op": "die"})
            assert excinfo.value.exitcode == -signal.SIGKILL
            assert not supervisor.ping()
        finally:
            supervisor.stop()

    def test_restart_revives_a_dead_worker(self):
        supervisor = WorkerSupervisor(target=_echo_main)
        supervisor.start()
        try:
            with pytest.raises(WorkerCrashed):
                supervisor.request({"op": "die"})
            supervisor.restart()
            assert supervisor.alive()
            assert supervisor.ping()
            assert supervisor.starts == 2
        finally:
            supervisor.stop()

    def test_hung_worker_is_killed_on_timeout(self):
        supervisor = WorkerSupervisor(target=_echo_main)
        supervisor.start()
        try:
            began = time.monotonic()
            with pytest.raises(WorkerCrashed) as excinfo:
                supervisor.request({"op": "hang", "seconds": 30.0},
                                   timeout=0.2)
            assert time.monotonic() - began < 5.0
            assert "unresponsive" in str(excinfo.value)
            assert not supervisor.alive()
        finally:
            supervisor.stop()

    def test_unknown_start_method_is_unavailable(self):
        with pytest.raises(ProcessTransportUnavailable):
            resolve_start_method("not-a-start-method")


def _inline_factory_for_test(bundle):
    """Used through a lambda below, so the *lambda* is what fails to pickle."""
    return AbonnVerifier(lp_cache=bundle.lp_cache,
                         bound_cache=bundle.bound_cache)


class _PoisonRun(VerifierRun):
    """Kills its worker process on every step (deterministic crasher)."""

    def step(self):
        os.kill(os.getpid(), signal.SIGKILL)

    def interrupt(self):
        return None


class _PoisonVerifier:
    def __init__(self, bundle) -> None:
        pass

    def start_run(self, network, spec, budget=None):
        return _PoisonRun()


def _poison_factory(bundle):
    return _PoisonVerifier(bundle)


class _SleepyRun(VerifierRun):
    """Hangs inside a round far longer than any slice timeout."""

    def step(self):
        time.sleep(60.0)
        return None

    def interrupt(self):
        return None


class _SleepyVerifier:
    def __init__(self, bundle) -> None:
        pass

    def start_run(self, network, spec, budget=None):
        return _SleepyRun()


def _sleepy_factory(bundle):
    return _SleepyVerifier(bundle)


class TestGracefulDegradation:
    def test_spawn_unavailable_degrades_to_inline(self):
        """A host that cannot spawn workers still answers every job:
        shards fall back to in-process execution and record the downgrade."""
        service = VerificationService(ServiceConfig(
            pool_size=2, transport="process",
            process_start_method="not-a-start-method"))
        with service:
            ids = [service.submit(*PROBLEM_A,
                                  budget=Budget(max_nodes=BUDGET_NODES))
                   for _ in range(3)]
            results = {done.job_id: done for done in service.as_completed()}
        for job_id in ids:
            assert results[job_id].ok
            _assert_identical(results[job_id].result, SOLO_A)
        stats = service.stats()
        downgrades = stats["transport_downgrades"]
        assert len(downgrades) >= 1
        assert all("unavailable" in entry["reason"] for entry in downgrades)
        assert stats["jobs_failed"] == 0

    def test_crash_budget_exhaustion_degrades_shard(self):
        """A shard whose worker keeps dying degrades to in-process
        execution; crash-implicated jobs fail (running them inline would
        kill the host) while clean jobs on the shard complete inline."""
        service = VerificationService(ServiceConfig(
            pool_size=1, transport="process", worker_crash_budget=1,
            retry=RetryPolicy(max_attempts=5, backoff_seconds=0.01)))
        with service:
            bad = service.submit(*PROBLEM_A,
                                 budget=Budget(max_nodes=BUDGET_NODES),
                                 verifier_factory=_poison_factory)
            good = service.submit(*PROBLEM_A,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}

        failed = results[bad]
        assert not failed.ok
        assert failed.error.kind == "WorkerCrash"
        assert "degraded" in failed.error.message
        assert failed.worker_crashes == 2  # budget of 1, degraded on the 2nd

        assert results[good].ok
        _assert_identical(results[good].result, SOLO_A)

        stats = service.stats()
        assert stats["transport_downgrades"] == [
            {"worker": 0, "reason": "worker crash budget exceeded"}]
        assert stats["worker_crashes"] == 2

    def test_unpicklable_job_runs_inline_beside_remote_jobs(self):
        """A job whose factory cannot cross the pipe degrades *per job*:
        it runs on the shard thread while picklable jobs keep their
        process isolation — and both answer solo-identically."""
        service = VerificationService(ServiceConfig(
            pool_size=1, transport="process"))
        with service:
            inline = service.submit(
                *PROBLEM_A, budget=Budget(max_nodes=BUDGET_NODES),
                verifier_factory=lambda bundle: _inline_factory_for_test(
                    bundle))
            remote = service.submit(*PROBLEM_A,
                                    budget=Budget(max_nodes=BUDGET_NODES))
            results = {done.job_id: done for done in service.as_completed()}
        assert results[inline].ok
        _assert_identical(results[inline].result, SOLO_A)
        assert results[remote].ok
        _assert_identical(results[remote].result, SOLO_A)
        stats = service.stats()
        assert stats["jobs_inline"] == 1
        assert stats["transport_downgrades"] == []

    def test_hung_worker_is_contained_by_slice_timeout(self):
        """A worker stuck inside a round is killed after
        ``slice_timeout_seconds`` and surfaces as a worker crash — the
        service never blocks forever on one hung process."""
        service = VerificationService(ServiceConfig(
            pool_size=1, transport="process", slice_timeout_seconds=0.3,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01)))
        began = time.monotonic()
        with service:
            stuck = service.submit(*PROBLEM_A,
                                   budget=Budget(max_nodes=BUDGET_NODES),
                                   verifier_factory=_sleepy_factory)
            results = {done.job_id: done for done in service.as_completed()}
        assert time.monotonic() - began < 30.0
        failed = results[stuck]
        assert not failed.ok
        assert failed.error.kind == "WorkerCrash"
        assert "unresponsive" in failed.error.message
        assert failed.worker_crashes == 2


class TestWorkerWarmthCollection:
    def test_shutdown_collects_worker_bundles_into_pool(self, tmp_path):
        """Cache warmth accumulated inside worker processes survives them:
        shutdown ships the worker-local bundles back, so ``save_caches``
        after a process-transport run persists real entries and a fresh
        service warm-starts from them."""
        service = VerificationService(ServiceConfig(
            pool_size=1, transport="process"))
        with service:
            job_id = service.submit(*PROBLEM_LP,
                                    budget=Budget(max_nodes=BUDGET_NODES))
            service.run_until_complete()
            fingerprint = service.result(job_id).fingerprint
        # Post-shutdown the parent bundle holds the worker's entries.
        bundle = service.pool.bundle(fingerprint)
        assert bundle.bound_cache.export_entries()
        paths = service.save_caches(tmp_path)
        assert len(paths) == 1

        warm = VerificationService(ServiceConfig(pool_size=1,
                                                 transport="process"))
        assert warm.load_caches(tmp_path) == 1
        with warm:
            warm_id = warm.submit(*PROBLEM_LP,
                                  budget=Budget(max_nodes=BUDGET_NODES))
            warm.run_until_complete()
            done = warm.result(warm_id)
        assert done.ok
        _assert_identical(done.result, SOLO_LP)
