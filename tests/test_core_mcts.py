"""Tests for repro.core.mcts (reward/visit bookkeeping and UCB1 selection)."""

import math

import pytest

from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core.mcts import (
    MctsNode,
    propagate_rewards,
    propagate_sizes,
    select_child,
    ucb1_score,
)


def make_node(reward=0.0, depth=0, parent=None, subtree_size=1):
    node = MctsNode(SplitAssignment.empty(), depth=depth, outcome=None,
                    reward=reward, parent=parent)
    node.subtree_size = subtree_size
    return node


def attach_children(parent, reward_plus, reward_minus, size_plus=1, size_minus=1):
    plus = make_node(reward=reward_plus, depth=parent.depth + 1, parent=parent,
                     subtree_size=size_plus)
    minus = make_node(reward=reward_minus, depth=parent.depth + 1, parent=parent,
                      subtree_size=size_minus)
    parent.children[ACTIVE] = plus
    parent.children[INACTIVE] = minus
    parent.subtree_size = 1 + size_plus + size_minus
    return plus, minus


class TestUcb1:
    def test_formula(self):
        expected = 0.4 + 0.2 * math.sqrt(2 * math.log(9) / 3)
        assert ucb1_score(0.4, 9, 3, 0.2) == pytest.approx(expected)

    def test_zero_exploration_is_pure_exploitation(self):
        assert ucb1_score(0.7, 100, 1, 0.0) == pytest.approx(0.7)

    def test_verified_child_is_never_selected(self):
        assert ucb1_score(float("-inf"), 10, 1, 10.0) == float("-inf")

    def test_falsified_child_dominates(self):
        assert ucb1_score(float("inf"), 10, 5, 0.2) == float("inf")

    def test_less_visited_child_gets_larger_bonus(self):
        rare = ucb1_score(0.5, 100, 1, 0.3)
        frequent = ucb1_score(0.5, 100, 50, 0.3)
        assert rare > frequent

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ucb1_score(0.5, 0, 1, 0.2)


class TestSelectChild:
    def test_prefers_higher_reward_without_exploration(self):
        root = make_node()
        plus, minus = attach_children(root, reward_plus=0.9, reward_minus=0.4)
        assert select_child(root, exploration=0.0) is plus

    def test_exploration_can_flip_the_choice(self):
        root = make_node()
        # The + child has slightly higher reward but has been visited a lot.
        plus, minus = attach_children(root, reward_plus=0.55, reward_minus=0.5,
                                      size_plus=200, size_minus=1)
        root.subtree_size = 202
        assert select_child(root, exploration=0.0) is plus
        assert select_child(root, exploration=1.0) is minus

    def test_all_children_verified_returns_none(self):
        root = make_node()
        attach_children(root, float("-inf"), float("-inf"))
        assert select_child(root, exploration=0.5) is None

    def test_tie_breaks_towards_active_child(self):
        root = make_node()
        plus, _ = attach_children(root, reward_plus=0.5, reward_minus=0.5)
        assert select_child(root, exploration=0.0) is plus

    def test_unexpanded_node_rejected(self):
        with pytest.raises(ValueError):
            select_child(make_node(), exploration=0.1)


class TestPropagation:
    def test_sizes_propagate_to_ancestors(self):
        root = make_node()
        plus, minus = attach_children(root, 0.1, 0.2)
        grandchild_parent = plus
        propagate_sizes(grandchild_parent, 2)
        assert grandchild_parent.subtree_size == 3
        assert root.subtree_size == 5

    def test_rewards_propagate_as_max_of_children(self):
        root = make_node(reward=0.0)
        plus, minus = attach_children(root, 0.3, 0.8)
        propagate_rewards(root)
        assert root.reward == pytest.approx(0.8)

    def test_counterexample_bubbles_up(self):
        root = make_node()
        plus, minus = attach_children(root, 0.3, float("inf"))
        minus.counterexample = "witness"
        propagate_rewards(root)
        assert root.reward == float("inf")
        assert root.counterexample == "witness"

    def test_refresh_without_children_is_noop(self):
        node = make_node(reward=0.42)
        node.refresh_from_children()
        assert node.reward == pytest.approx(0.42)

    def test_descendants(self):
        root = make_node()
        plus, minus = attach_children(root, 0.1, 0.2)
        descendants = root.descendants()
        assert len(descendants) == 3
        for node in (root, plus, minus):
            assert any(node is candidate for candidate in descendants)


class TestNodeAccessors:
    def test_child_lookup(self):
        root = make_node()
        plus, minus = attach_children(root, 0.1, 0.2)
        assert root.child(ACTIVE) is plus
        assert root.child(INACTIVE) is minus

    def test_missing_child_rejected(self):
        with pytest.raises(ValueError):
            make_node().child(ACTIVE)

    def test_is_root_and_expanded_flags(self):
        root = make_node()
        assert root.is_root and not root.is_expanded
        plus, _ = attach_children(root, 0.1, 0.2)
        assert root.is_expanded and not plus.is_root
