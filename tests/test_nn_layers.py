"""Tests for repro.nn.layers: forward semantics, gradients, affine lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import (
    Conv2d,
    Dense,
    Flatten,
    ReLU,
    layer_config,
    layer_from_config,
)


def numerical_gradient(function, point, epsilon=1e-6):
    """Central-difference gradient of a scalar function of a flat array."""
    point = np.asarray(point, dtype=float)
    grad = np.zeros_like(point)
    flat = point.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(point)
        flat[index] = original - epsilon
        lower = function(point)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


class TestDense:
    def test_forward_matches_matrix_product(self):
        layer = Dense(3, 2, weight=[[1.0, 0.0, -1.0], [2.0, 1.0, 0.5]], bias=[0.1, -0.2])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[1 - 3 + 0.1, 2 + 2 + 1.5 - 0.2]])

    def test_forward_flattens_structured_input(self):
        layer = Dense(4, 2, seed=0)
        x = np.arange(8, dtype=float).reshape(2, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 2)

    def test_output_shape(self):
        assert Dense(6, 4, seed=0).output_shape((2, 3)) == (4,)

    def test_output_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dense(6, 4, seed=0).output_shape((5,))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_explicit_weight_shape_checked(self):
        with pytest.raises(ValueError):
            Dense(3, 2, weight=np.zeros((3, 2)))

    def test_to_affine_matches_forward(self):
        layer = Dense(5, 3, seed=1)
        weight, bias = layer.to_affine((5,))
        x = np.random.default_rng(0).random((4, 5))
        np.testing.assert_allclose(layer.forward(x), x @ weight.T + bias)

    def test_gradient_wrt_input(self):
        layer = Dense(4, 3, seed=2)
        x = np.random.default_rng(1).random((1, 4))
        target = np.random.default_rng(2).random(3)

        def loss(point):
            return float(((layer.forward(point.reshape(1, 4)) - target) ** 2).sum())

        layer.forward(x)
        grad_out = 2 * (layer.forward(x) - target)
        analytic = layer.backward(grad_out).reshape(-1)
        numeric = numerical_gradient(loss, x.copy()).reshape(-1)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_wrt_parameters(self):
        layer = Dense(3, 2, seed=3)
        x = np.random.default_rng(4).random((2, 3))
        layer.forward(x)
        grad_out = np.ones((2, 2))
        layer.backward(grad_out)
        assert layer.grad_weight.shape == layer.weight.shape
        assert layer.grad_bias.shape == layer.bias.shape
        np.testing.assert_allclose(layer.grad_bias, [2.0, 2.0])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2, seed=0).backward(np.ones((1, 2)))


class TestFlatten:
    def test_forward_and_backward_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).random((3, 2, 4))
        out = layer.forward(x)
        assert out.shape == (3, 8)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_to_affine_is_identity(self):
        weight, bias = Flatten().to_affine((2, 3))
        np.testing.assert_allclose(weight, np.eye(6))
        np.testing.assert_allclose(bias, np.zeros(6))


class TestReLU:
    def test_forward_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_allclose(grad, [[0.0, 7.0]])

    def test_output_shape_preserved(self):
        assert ReLU().output_shape((3, 4, 4)) == (3, 4, 4)

    def test_is_not_affine(self):
        assert ReLU().is_relu and not ReLU().is_affine


class TestConv2d:
    def test_output_shape_no_padding(self):
        layer = Conv2d(1, 2, kernel_size=3, stride=1, padding=0, seed=0)
        assert layer.output_shape((1, 5, 5)) == (2, 3, 3)

    def test_output_shape_with_padding_and_stride(self):
        layer = Conv2d(3, 4, kernel_size=3, stride=2, padding=1, seed=0)
        assert layer.output_shape((3, 8, 8)) == (4, 4, 4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, kernel_size=3).output_shape((1, 8, 8))

    def test_forward_matches_manual_convolution(self):
        # A 1x1 kernel is a per-pixel linear map, easy to verify by hand.
        layer = Conv2d(1, 1, kernel_size=1, weight=np.array([[[[2.0]]]]), bias=np.array([0.5]))
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        np.testing.assert_allclose(layer.forward(x), 2.0 * x + 0.5)

    def test_forward_known_sum_kernel(self):
        kernel = np.ones((1, 1, 2, 2))
        layer = Conv2d(1, 1, kernel_size=2, weight=kernel, bias=np.zeros(1))
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(layer.forward(x), [[[[10.0]]]])

    def test_to_affine_matches_forward(self):
        layer = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, seed=5)
        weight, bias = layer.to_affine((2, 6, 6))
        x = np.random.default_rng(3).random((4, 2, 6, 6))
        direct = layer.forward(x).reshape(4, -1)
        via_matrix = x.reshape(4, -1) @ weight.T + bias
        np.testing.assert_allclose(direct, via_matrix, atol=1e-10)

    def test_gradient_wrt_input(self):
        layer = Conv2d(1, 2, kernel_size=3, stride=1, padding=1, seed=6)
        x = np.random.default_rng(5).random((1, 1, 4, 4))

        def loss(point):
            return float((layer.forward(point.reshape(1, 1, 4, 4)) ** 2).sum())

        out = layer.forward(x)
        analytic = layer.backward(2 * out).reshape(-1)
        numeric = numerical_gradient(loss, x.copy()).reshape(-1)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_wrt_weight(self):
        layer = Conv2d(1, 1, kernel_size=2, stride=1, padding=0, seed=7)
        x = np.random.default_rng(6).random((2, 1, 3, 3))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        original = layer.weight.copy()
        epsilon = 1e-6
        numeric = np.zeros_like(original)
        for index in np.ndindex(original.shape):
            layer.weight[index] = original[index] + epsilon
            upper = layer.forward(x).sum()
            layer.weight[index] = original[index] - epsilon
            lower = layer.forward(x).sum()
            layer.weight[index] = original[index]
            numeric[index] = (upper - lower) / (2 * epsilon)
        layer.forward(x)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.grad_weight, numeric, atol=1e-5)


class TestLayerSerialisation:
    @pytest.mark.parametrize("layer", [
        Dense(3, 2, seed=0),
        Conv2d(1, 2, kernel_size=3, stride=2, padding=1, seed=1),
        Flatten(),
        ReLU(),
    ])
    def test_roundtrip(self, layer):
        restored = layer_from_config(layer_config(layer))
        assert type(restored) is type(layer)
        for name, value in layer.parameters().items():
            np.testing.assert_allclose(restored.parameters()[name], value)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            layer_from_config({"kind": "mystery"})


@settings(max_examples=25, deadline=None)
@given(
    in_features=st.integers(min_value=1, max_value=6),
    out_features=st.integers(min_value=1, max_value=6),
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_dense_affine_property(in_features, out_features, batch, seed):
    """Dense layers are affine: f(x) - f(0) is linear in x."""
    layer = Dense(in_features, out_features, seed=seed)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, in_features))
    y = rng.normal(size=(batch, in_features))
    zero = layer.forward(np.zeros((1, in_features)))
    combined = layer.forward(x + y)
    np.testing.assert_allclose(combined,
                               layer.forward(x) + layer.forward(y) - zero,
                               atol=1e-9)
