"""Property-based soundness tests for the bound-propagation analysers.

For randomized networks, input boxes, specifications and split assignments,
every concrete execution sampled from the (split-constrained) input region
must lie within the interval and DeepPoly bounds, the specification margin
must never drop below ``p̂``, and DeepPoly must never be looser than
interval propagation on the final specification rows.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds.deeppoly import deeppoly_bounds
from repro.bounds.interval import interval_bounds
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.nn.network import dense_network
from repro.specs.properties import InputBox, LinearOutputSpec

SOUNDNESS_SETTINGS = settings(max_examples=30, deadline=None,
                              suppress_health_check=[HealthCheck.too_slow])

#: Slack for comparing concrete float64 executions against analytic bounds.
TOLERANCE = 1e-7


@st.composite
def problems(draw):
    """A random dense ReLU network, input box and linear output spec."""
    input_dim = draw(st.integers(min_value=2, max_value=5))
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=2, max_value=7)) for _ in range(depth)]
    output_dim = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    network = dense_network([input_dim, *widths, output_dim], seed=seed,
                            name=f"fuzz-{seed}")

    center = np.array(draw(st.lists(
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
        min_size=input_dim, max_size=input_dim)))
    epsilon = draw(st.floats(min_value=0.01, max_value=0.4, allow_nan=False))
    box = InputBox.from_linf_ball(center, epsilon)

    spec_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(spec_seed)
    rows = draw(st.integers(min_value=1, max_value=3))
    spec = LinearOutputSpec(rng.standard_normal((rows, output_dim)),
                            rng.standard_normal(rows))
    return network, box, spec


def _draw_splits(report, lowered, rng, max_splits: int) -> SplitAssignment:
    """A random assignment over (mostly unstable) neurons of the report."""
    neurons = report.unstable_neurons()
    if not neurons:
        neurons = [(layer, unit)
                   for layer, size in enumerate(lowered.relu_layer_sizes())
                   for unit in range(size)]
    count = int(rng.integers(0, min(max_splits, len(neurons)) + 1))
    chosen = rng.choice(len(neurons), size=count, replace=False)
    splits = SplitAssignment.empty()
    for index in chosen:
        layer, unit = neurons[int(index)]
        phase = ACTIVE if rng.random() < 0.5 else INACTIVE
        splits = splits.with_split(ReluSplit(layer, unit, phase))
    return splits


def _check_execution_within_report(report, lowered, samples, spec):
    """Every sampled execution respects the report's bounds and ``p̂``."""
    for sample in samples:
        pre_activations = lowered.pre_activations(sample)
        for layer, bounds in enumerate(report.pre_activation_bounds):
            assert bounds.contains(pre_activations[layer], tolerance=TOLERANCE)
        output = lowered.forward(sample.reshape(1, -1)).reshape(-1)
        assert report.output_bounds.contains(output, tolerance=TOLERANCE)
        margin = float(np.min(spec.constraint_values(output)))
        assert margin >= report.p_hat - TOLERANCE


class TestUnconstrainedSoundness:
    @SOUNDNESS_SETTINGS
    @given(problems(), st.integers(min_value=0, max_value=10_000))
    def test_sampled_executions_within_bounds(self, problem, sample_seed):
        network, box, spec = problem
        lowered = network.lowered()
        samples = box.sample(sample_seed, count=48)
        for report in (interval_bounds(lowered, box, spec=spec),
                       deeppoly_bounds(lowered, box, spec=spec)):
            assert not report.infeasible
            _check_execution_within_report(report, lowered, samples, spec)

    @SOUNDNESS_SETTINGS
    @given(problems())
    def test_deeppoly_never_looser_than_interval_on_spec_rows(self, problem):
        """Backward substitution dominates interval arithmetic on the spec.

        The precise sense in which DeepPoly is "never looser than interval"
        on the final spec rows: substituting the spec through the network
        must be at least as tight as applying interval arithmetic to
        DeepPoly's own output bounds (concretizing early).  Note the naive
        comparison against forward-IBP spec rows is NOT a theorem — the
        triangle relaxation's input-level concretization can exceed the
        forward interval image on mixed-sign rows (e.g. the 3-6-2 network of
        numpy seed 230 violates it by more than 2.0) — so that is not what
        we assert.
        """
        network, box, spec = problem
        lowered = network.lowered()
        deeppoly = deeppoly_bounds(lowered, box, spec=spec)
        positive = np.clip(spec.coefficients, 0.0, None)
        negative = np.clip(spec.coefficients, None, 0.0)
        early_lower = (positive @ deeppoly.output_bounds.lower
                       + negative @ deeppoly.output_bounds.upper + spec.offsets)
        assert np.all(deeppoly.spec_row_lower >= early_lower - 1e-9)
        assert deeppoly.p_hat >= float(np.min(early_lower)) - 1e-9


class TestSplitConstrainedSoundness:
    @SOUNDNESS_SETTINGS
    @given(problems(), st.integers(min_value=0, max_value=10_000))
    def test_split_region_executions_within_bounds(self, problem, split_seed):
        network, box, spec = problem
        lowered = network.lowered()
        rng = np.random.default_rng(split_seed)
        root = deeppoly_bounds(lowered, box, spec=spec)
        splits = _draw_splits(root, lowered, rng, max_splits=3)

        samples = box.sample(split_seed, count=64)
        satisfying = [sample for sample in samples
                      if splits.satisfied_by(lowered.pre_activations(sample))]

        for analyse in (interval_bounds, deeppoly_bounds):
            report = analyse(lowered, box, splits=splits, spec=spec)
            if report.infeasible:
                # An empty sub-problem region is vacuously verified.
                assert report.p_hat == float("inf")
                continue
            # The bounds constrain the *sub-problem* region: only samples that
            # satisfy every split decision must be contained.
            _check_execution_within_report(report, lowered, satisfying, spec)

    @SOUNDNESS_SETTINGS
    @given(problems(), st.integers(min_value=0, max_value=10_000))
    def test_split_bounds_respect_decided_phases(self, problem, split_seed):
        network, box, spec = problem
        lowered = network.lowered()
        rng = np.random.default_rng(split_seed)
        root = deeppoly_bounds(lowered, box, spec=spec)
        splits = _draw_splits(root, lowered, rng, max_splits=3)
        report = deeppoly_bounds(lowered, box, splits=splits, spec=spec)
        if report.infeasible:
            return
        for split in splits:
            bounds = report.pre_activation_bounds[split.layer]
            if split.phase == ACTIVE:
                assert bounds.lower[split.unit] >= -1e-12
            else:
                assert bounds.upper[split.unit] <= 1e-12
