"""Tests for repro.specs.properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.specs.properties import InputBox, LinearOutputSpec, Specification


class TestInputBox:
    def test_basic_construction(self):
        box = InputBox([0.0, 0.1], [1.0, 0.9])
        assert box.dimension == 2
        np.testing.assert_allclose(box.center, [0.5, 0.5])
        np.testing.assert_allclose(box.radius, [0.5, 0.4])

    def test_lower_above_upper_rejected(self):
        with pytest.raises(ValueError):
            InputBox([1.0], [0.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            InputBox([np.nan], [1.0])

    def test_from_linf_ball_clips_to_domain(self):
        box = InputBox.from_linf_ball(np.array([0.05, 0.95]), 0.1)
        np.testing.assert_allclose(box.lower, [0.0, 0.85])
        np.testing.assert_allclose(box.upper, [0.15, 1.0])

    def test_from_linf_ball_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            InputBox.from_linf_ball(np.zeros(2), -0.1)

    def test_contains(self):
        box = InputBox([0.0, 0.0], [1.0, 1.0])
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))

    def test_clip(self):
        box = InputBox([0.0, 0.0], [1.0, 1.0])
        np.testing.assert_allclose(box.clip(np.array([-1.0, 2.0])), [0.0, 1.0])

    def test_sample_stays_inside(self):
        box = InputBox([0.2, -0.5], [0.4, 0.5])
        samples = box.sample(0, count=50)
        assert samples.shape == (50, 2)
        assert all(box.contains(s) for s in samples)

    def test_corners(self):
        box = InputBox([0.0, 0.0], [1.0, 2.0])
        np.testing.assert_allclose(box.corners(np.array([1.0, -1.0])), [1.0, 0.0])

    def test_volume_log(self):
        box = InputBox([0.0, 0.0], [1.0, np.e])
        assert box.volume_log == pytest.approx(1.0)

    def test_degenerate_volume(self):
        box = InputBox([0.5], [0.5])
        assert box.volume_log == float("-inf")


class TestLinearOutputSpec:
    def test_margin_and_satisfaction(self):
        spec = LinearOutputSpec(np.array([[1.0, -1.0]]), np.array([0.0]))
        assert spec.margin(np.array([2.0, 1.0])) == pytest.approx(1.0)
        assert spec.satisfied(np.array([2.0, 1.0]))
        assert not spec.satisfied(np.array([0.0, 1.0]))

    def test_margin_is_minimum_over_rows(self):
        spec = LinearOutputSpec(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([0.0, -5.0]))
        assert spec.margin(np.array([1.0, 2.0])) == pytest.approx(-3.0)

    def test_constraint_values_shape(self):
        spec = LinearOutputSpec(np.eye(3), np.zeros(3))
        assert spec.constraint_values(np.ones(3)).shape == (3,)

    def test_dimension_mismatch_rejected(self):
        spec = LinearOutputSpec(np.eye(2), np.zeros(2))
        with pytest.raises(ValueError):
            spec.margin(np.ones(3))

    def test_empty_constraints_rejected(self):
        with pytest.raises(ValueError):
            LinearOutputSpec(np.zeros((0, 3)), np.zeros(0))

    def test_offset_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearOutputSpec(np.eye(2), np.zeros(3))


class TestSpecification:
    def test_counterexample_detection(self, small_network, small_spec):
        inside_violating = None
        # A point far from the reference label region should violate for some sample.
        samples = small_spec.input_box.sample(0, count=200)
        for sample in samples:
            if small_spec.margin(small_network, sample) < 0:
                inside_violating = sample
                break
        if inside_violating is not None:
            assert small_spec.is_counterexample(small_network, inside_violating)

    def test_point_outside_box_is_not_counterexample(self, small_network, small_spec):
        outside = small_spec.input_box.upper + 1.0
        assert not small_spec.is_counterexample(small_network, outside)

    def test_margin_matches_output_spec(self, small_network, small_spec):
        point = small_spec.input_box.center
        output = small_network.forward(point.reshape(1, -1))[0]
        assert small_spec.margin(small_network, point) == pytest.approx(
            small_spec.output_spec.margin(output))

    def test_dims(self, small_spec):
        assert small_spec.input_dim == 4
        assert small_spec.output_dim == 3


@settings(max_examples=30, deadline=None)
@given(center=hnp.arrays(float, 3, elements=st.floats(0.0, 1.0)),
       epsilon=st.floats(0.0, 0.5))
def test_linf_ball_always_contains_center_property(center, epsilon):
    box = InputBox.from_linf_ball(center, epsilon)
    assert box.contains(np.clip(center, 0.0, 1.0))
