"""Tests for repro.specs.robustness."""

import time

import numpy as np
import pytest

from repro.specs.robustness import (
    local_robustness_spec,
    robustness_output_spec,
    robustness_radius_sweep,
)
from repro.utils.timing import Budget


class TestRobustnessOutputSpec:
    def test_untargeted_has_one_constraint_per_competitor(self):
        spec = robustness_output_spec(num_classes=5, label=2)
        assert spec.num_constraints == 4
        assert spec.output_dim == 5

    def test_targeted_has_single_constraint(self):
        spec = robustness_output_spec(num_classes=5, label=2, target=4)
        assert spec.num_constraints == 1

    def test_margin_is_logit_gap(self):
        spec = robustness_output_spec(num_classes=3, label=0)
        logits = np.array([2.0, 1.5, -1.0])
        assert spec.margin(logits) == pytest.approx(0.5)

    def test_violated_when_other_class_wins(self):
        spec = robustness_output_spec(num_classes=3, label=0)
        assert not spec.satisfied(np.array([0.0, 1.0, -1.0]))

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=3, label=3)

    def test_target_equal_to_label_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=3, label=1, target=1)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=1, label=0)


class TestLocalRobustnessSpec:
    def test_box_is_clipped_linf_ball(self):
        reference = np.array([0.1, 0.9, 0.5])
        spec = local_robustness_spec(reference, 0.2, label=0, num_classes=3)
        np.testing.assert_allclose(spec.input_box.lower, [0.0, 0.7, 0.3])
        np.testing.assert_allclose(spec.input_box.upper, [0.3, 1.0, 0.7])

    def test_metadata_recorded(self):
        reference = np.zeros(4)
        spec = local_robustness_spec(reference, 0.1, label=1, num_classes=3, target=2)
        assert spec.metadata["epsilon"] == pytest.approx(0.1)
        assert spec.metadata["label"] == 1
        assert spec.metadata["target"] == 2
        assert spec.metadata["kind"] == "local_robustness"

    def test_default_name_mentions_epsilon(self):
        spec = local_robustness_spec(np.zeros(2), 0.25, label=0, num_classes=2)
        assert "0.25" in spec.name

    def test_custom_domain(self):
        spec = local_robustness_spec(np.zeros(2), 0.5, label=0, num_classes=2,
                                     domain_lower=-1.0, domain_upper=1.0)
        np.testing.assert_allclose(spec.input_box.lower, [-0.5, -0.5])

    def test_reference_flattened(self):
        reference = np.zeros((2, 2))
        spec = local_robustness_spec(reference, 0.1, label=0, num_classes=2)
        assert spec.input_dim == 4


class TestRadiusSweepBudget:
    """Regression: the sweep handed each run an *unstarted* budget copy.

    A custom verifier that consumes the budget directly (without the
    ``make_budget`` copy-and-start) then saw a wall clock that only began
    at its first ``exhausted()`` check, so time spent before that check
    was free.  The sweep now starts each per-run copy explicitly.
    """

    def test_each_run_receives_a_started_fresh_budget(self):
        seen = []

        class StubVerifier:
            def verify(self, network, spec, budget):
                time.sleep(0.005)
                # The clock must already be running: work done before the
                # verifier's first exhaustion check is on the record.
                seen.append(budget.elapsed_seconds)
                return budget.exhausted()

        results, _ = robustness_radius_sweep(
            lambda cache: StubVerifier(), network=None,
            reference=np.zeros(2), epsilons=[0.05, 0.1], label=0,
            num_classes=2, budget=Budget(max_seconds=0.001))
        assert len(seen) == 2
        assert all(elapsed > 0.0 for elapsed in seen)
        assert all(exhausted is True for _, exhausted in results)

    def test_no_budget_still_passes_none_through(self):
        captured = []

        class StubVerifier:
            def verify(self, network, spec, budget):
                captured.append(budget)
                return None

        robustness_radius_sweep(lambda cache: StubVerifier(), network=None,
                                reference=np.zeros(2), epsilons=[0.05],
                                label=0, num_classes=2)
        assert captured == [None]
