"""Tests for repro.specs.robustness."""

import numpy as np
import pytest

from repro.specs.robustness import local_robustness_spec, robustness_output_spec


class TestRobustnessOutputSpec:
    def test_untargeted_has_one_constraint_per_competitor(self):
        spec = robustness_output_spec(num_classes=5, label=2)
        assert spec.num_constraints == 4
        assert spec.output_dim == 5

    def test_targeted_has_single_constraint(self):
        spec = robustness_output_spec(num_classes=5, label=2, target=4)
        assert spec.num_constraints == 1

    def test_margin_is_logit_gap(self):
        spec = robustness_output_spec(num_classes=3, label=0)
        logits = np.array([2.0, 1.5, -1.0])
        assert spec.margin(logits) == pytest.approx(0.5)

    def test_violated_when_other_class_wins(self):
        spec = robustness_output_spec(num_classes=3, label=0)
        assert not spec.satisfied(np.array([0.0, 1.0, -1.0]))

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=3, label=3)

    def test_target_equal_to_label_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=3, label=1, target=1)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            robustness_output_spec(num_classes=1, label=0)


class TestLocalRobustnessSpec:
    def test_box_is_clipped_linf_ball(self):
        reference = np.array([0.1, 0.9, 0.5])
        spec = local_robustness_spec(reference, 0.2, label=0, num_classes=3)
        np.testing.assert_allclose(spec.input_box.lower, [0.0, 0.7, 0.3])
        np.testing.assert_allclose(spec.input_box.upper, [0.3, 1.0, 0.7])

    def test_metadata_recorded(self):
        reference = np.zeros(4)
        spec = local_robustness_spec(reference, 0.1, label=1, num_classes=3, target=2)
        assert spec.metadata["epsilon"] == pytest.approx(0.1)
        assert spec.metadata["label"] == 1
        assert spec.metadata["target"] == 2
        assert spec.metadata["kind"] == "local_robustness"

    def test_default_name_mentions_epsilon(self):
        spec = local_robustness_spec(np.zeros(2), 0.25, label=0, num_classes=2)
        assert "0.25" in spec.name

    def test_custom_domain(self):
        spec = local_robustness_spec(np.zeros(2), 0.5, label=0, num_classes=2,
                                     domain_lower=-1.0, domain_upper=1.0)
        np.testing.assert_allclose(spec.input_box.lower, [-0.5, -0.5])

    def test_reference_flattened(self):
        reference = np.zeros((2, 2))
        spec = local_robustness_spec(reference, 0.1, label=0, num_classes=2)
        assert spec.input_dim == 4
