"""Tests for repro.bounds.splits."""

import numpy as np
import pytest

from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment


class TestReluSplit:
    def test_negation(self):
        split = ReluSplit(1, 3, ACTIVE)
        assert split.negated() == ReluSplit(1, 3, INACTIVE)

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            ReluSplit(0, 0, 2)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            ReluSplit(-1, 0, ACTIVE)

    def test_string_representation(self):
        assert str(ReluSplit(0, 2, ACTIVE)) == "r+(0,2)"
        assert str(ReluSplit(1, 0, INACTIVE)) == "r-(1,0)"


class TestSplitAssignment:
    def test_empty(self):
        assignment = SplitAssignment.empty()
        assert len(assignment) == 0
        assert assignment.phase_of(0, 0) == 0
        assert not assignment.is_decided(0, 0)

    def test_with_split_is_persistent(self):
        base = SplitAssignment.empty()
        extended = base.with_split(ReluSplit(0, 1, ACTIVE))
        assert len(base) == 0
        assert len(extended) == 1
        assert extended.phase_of(0, 1) == ACTIVE

    def test_conflicting_split_rejected(self):
        assignment = SplitAssignment.empty().with_split(ReluSplit(0, 1, ACTIVE))
        with pytest.raises(ValueError):
            assignment.with_split(ReluSplit(0, 1, INACTIVE))

    def test_repeated_identical_split_allowed(self):
        assignment = SplitAssignment.empty().with_split(ReluSplit(0, 1, ACTIVE))
        again = assignment.with_split(ReluSplit(0, 1, ACTIVE))
        assert len(again) == 1

    def test_layer_phases(self):
        assignment = SplitAssignment.from_splits([ReluSplit(0, 1, ACTIVE),
                                                  ReluSplit(1, 0, INACTIVE),
                                                  ReluSplit(0, 3, INACTIVE)])
        assert assignment.layer_phases(0, 10) == {1: ACTIVE, 3: INACTIVE}
        assert assignment.layer_phases(1, 10) == {0: INACTIVE}
        assert assignment.layer_phases(2, 10) == {}

    def test_layer_phases_respects_width(self):
        assignment = SplitAssignment.from_splits([ReluSplit(0, 7, ACTIVE)])
        assert assignment.layer_phases(0, 5) == {}

    def test_equality_and_hash(self):
        a = SplitAssignment.from_splits([ReluSplit(0, 1, ACTIVE), ReluSplit(1, 2, INACTIVE)])
        b = SplitAssignment.from_splits([ReluSplit(1, 2, INACTIVE), ReluSplit(0, 1, ACTIVE)])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_is_sorted(self):
        assignment = SplitAssignment.from_splits([ReluSplit(1, 0, ACTIVE),
                                                  ReluSplit(0, 2, INACTIVE)])
        neurons = [split.neuron for split in assignment]
        assert neurons == [(0, 2), (1, 0)]

    def test_str(self):
        assert str(SplitAssignment.empty()) == "Γ=ε"
        assignment = SplitAssignment.from_splits([ReluSplit(0, 0, ACTIVE)])
        assert "r+(0,0)" in str(assignment)

    def test_satisfied_by(self):
        assignment = SplitAssignment.from_splits([ReluSplit(0, 0, ACTIVE),
                                                  ReluSplit(1, 1, INACTIVE)])
        pre = [np.array([0.5, -1.0]), np.array([3.0, -0.2])]
        assert assignment.satisfied_by(pre)
        pre_bad = [np.array([-0.5, -1.0]), np.array([3.0, -0.2])]
        assert not assignment.satisfied_by(pre_bad)

    def test_satisfied_by_out_of_range(self):
        assignment = SplitAssignment.from_splits([ReluSplit(3, 0, ACTIVE)])
        assert not assignment.satisfied_by([np.array([1.0])])

    def test_decided_neurons(self):
        assignment = SplitAssignment.from_splits([ReluSplit(2, 1, ACTIVE),
                                                  ReluSplit(0, 0, INACTIVE)])
        assert assignment.decided_neurons() == ((0, 0), (2, 1))
