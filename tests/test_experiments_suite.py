"""Tests for repro.experiments.suite (benchmark generation, Table I data)."""

import numpy as np
import pytest

from repro.experiments.suite import (
    BenchmarkSuite,
    SuiteConfig,
    generate_suite,
    root_certified_radius,
    table1_rows,
)
from repro.verifiers.appver import ApproximateVerifier


@pytest.fixture(scope="module")
def small_suite():
    config = SuiteConfig(families=("MNIST_L2",), instances_per_family=4, seed=0,
                         search_steps=6)
    return generate_suite(config)


class TestSuiteGeneration:
    def test_instance_count_respected(self, small_suite):
        assert len(small_suite) <= 4
        assert len(small_suite) >= 1

    def test_families(self, small_suite):
        assert small_suite.families == ("MNIST_L2",)
        assert set(small_suite.counts()) == {"MNIST_L2"}

    def test_instances_are_not_root_trivial(self, small_suite):
        for instance in small_suite.instances:
            network = small_suite.network_for(instance)
            outcome = ApproximateVerifier(network, instance.spec).evaluate()
            assert not outcome.verified
            assert not outcome.falsified

    def test_instance_ids_unique(self, small_suite):
        ids = [instance.instance_id for instance in small_suite.instances]
        assert len(ids) == len(set(ids))

    def test_specs_reference_correctly_classified_inputs(self, small_suite):
        for instance in small_suite.instances:
            network = small_suite.network_for(instance)
            dataset = small_suite.datasets[instance.family]
            image, label = dataset.sample(instance.reference_index)
            assert label == instance.label
            assert int(network.predict(image.reshape(1, -1))[0]) == label

    def test_deterministic_for_seed(self):
        config = SuiteConfig(families=("MNIST_L2",), instances_per_family=2, seed=3,
                             search_steps=5)
        first = generate_suite(config)
        second = generate_suite(config)
        assert [i.instance_id for i in first.instances] == \
            [i.instance_id for i in second.instances]
        assert [i.epsilon for i in first.instances] == \
            pytest.approx([i.epsilon for i in second.instances])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SuiteConfig(instances_per_family=0)
        with pytest.raises(ValueError):
            SuiteConfig(search_steps=2)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_suite(SuiteConfig(families=("MNIST_L8",), instances_per_family=1))


class TestRootCertifiedRadius:
    def test_radius_is_certified(self, small_suite):
        from repro.specs.robustness import local_robustness_spec

        family = small_suite.families[0]
        network = small_suite.networks[family]
        dataset = small_suite.datasets[family]
        image, label = dataset.sample(0)
        if int(network.predict(image.reshape(1, -1))[0]) != label:
            pytest.skip("reference not classified correctly")
        radius = root_certified_radius(network, image.reshape(-1), label,
                                       dataset.num_classes, steps=6)
        if radius > 0:
            spec = local_robustness_spec(image.reshape(-1), radius * 0.95, label,
                                         dataset.num_classes)
            assert ApproximateVerifier(network, spec).evaluate().verified


class TestTable1:
    def test_rows_have_expected_columns(self, small_suite):
        rows = table1_rows(small_suite)
        assert len(rows) == 1
        row = rows[0]
        assert row["model"] == "MNIST_L2"
        assert row["neurons"] == small_suite.networks["MNIST_L2"].num_relu_neurons
        assert row["instances"] == len(small_suite)
