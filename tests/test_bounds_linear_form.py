"""Tests for repro.bounds.linear_form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.linear_form import (
    LinearForm,
    ScalarBounds,
    concretize_lower,
    concretize_upper,
    minimizing_corner,
)
from repro.specs.properties import InputBox


BOX = InputBox([0.0, -1.0, 2.0], [1.0, 1.0, 3.0])


class TestConcretization:
    def test_lower_bound_single_row(self):
        coefficients = np.array([[1.0, -2.0, 0.5]])
        constants = np.array([1.0])
        lower = concretize_lower(coefficients, constants, BOX)
        # min = 1*0 + (-2)*1 + 0.5*2 + 1 = 0
        assert lower[0] == pytest.approx(0.0)

    def test_upper_bound_single_row(self):
        coefficients = np.array([[1.0, -2.0, 0.5]])
        constants = np.array([1.0])
        upper = concretize_upper(coefficients, constants, BOX)
        # max = 1*1 + (-2)*(-1) + 0.5*3 + 1 = 5.5
        assert upper[0] == pytest.approx(5.5)

    def test_lower_never_exceeds_upper(self):
        rng = np.random.default_rng(0)
        coefficients = rng.normal(size=(6, 3))
        constants = rng.normal(size=6)
        lower = concretize_lower(coefficients, constants, BOX)
        upper = concretize_upper(coefficients, constants, BOX)
        assert np.all(lower <= upper + 1e-12)

    def test_minimizing_corner_attains_lower(self):
        rng = np.random.default_rng(1)
        coefficients = rng.normal(size=(1, 3))
        constants = rng.normal(size=1)
        corner = minimizing_corner(coefficients[0], BOX)
        value = coefficients[0] @ corner + constants[0]
        assert value == pytest.approx(concretize_lower(coefficients, constants, BOX)[0])


class TestLinearForm:
    def test_evaluate(self):
        form = LinearForm(np.array([[1.0, 0.0, 2.0]]), np.array([0.5]))
        assert form.evaluate(np.array([1.0, 5.0, 2.0]))[0] == pytest.approx(5.5)

    def test_bounds_contain_sampled_values(self):
        rng = np.random.default_rng(2)
        form = LinearForm(rng.normal(size=(4, 3)), rng.normal(size=4))
        lower = form.lower_bound(BOX)
        upper = form.upper_bound(BOX)
        for sample in BOX.sample(3, count=100):
            values = form.evaluate(sample)
            assert np.all(values >= lower - 1e-9)
            assert np.all(values <= upper + 1e-9)

    def test_minimizer_and_maximizer_in_box(self):
        rng = np.random.default_rng(3)
        form = LinearForm(rng.normal(size=(2, 3)), rng.normal(size=2))
        assert BOX.contains(form.minimizer(BOX, 0))
        assert BOX.contains(form.maximizer(BOX, 1))

    def test_maximizer_attains_upper(self):
        form = LinearForm(np.array([[1.0, -1.0, 0.0]]), np.array([0.0]))
        value = form.evaluate(form.maximizer(BOX, 0))[0]
        assert value == pytest.approx(form.upper_bound(BOX)[0])

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearForm(np.zeros((2, 3)), np.zeros(3))

    def test_wrong_input_dimension_rejected(self):
        form = LinearForm(np.zeros((1, 3)), np.zeros(1))
        with pytest.raises(ValueError):
            form.evaluate(np.zeros(2))


class TestScalarBounds:
    def test_consistency(self):
        assert ScalarBounds([0.0, 1.0], [1.0, 2.0]).is_consistent()
        assert not ScalarBounds([2.0], [1.0]).is_consistent()

    def test_width(self):
        np.testing.assert_allclose(ScalarBounds([0.0, -1.0], [1.0, 1.0]).width, [1.0, 2.0])

    def test_intersect(self):
        merged = ScalarBounds([0.0, 0.0], [2.0, 2.0]).intersect(ScalarBounds([1.0, -1.0],
                                                                             [3.0, 1.0]))
        np.testing.assert_allclose(merged.lower, [1.0, 0.0])
        np.testing.assert_allclose(merged.upper, [2.0, 1.0])

    def test_contains(self):
        bounds = ScalarBounds([0.0, 0.0], [1.0, 1.0])
        assert bounds.contains(np.array([0.5, 1.0]))
        assert not bounds.contains(np.array([0.5, 1.5]))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ScalarBounds([0.0], [1.0]).intersect(ScalarBounds([0.0, 0.0], [1.0, 1.0]))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_concretization_soundness_property(seed):
    """Random linear forms: every sampled value lies within the concretised bounds."""
    rng = np.random.default_rng(seed)
    dim = int(rng.integers(1, 5))
    lower = rng.normal(size=dim)
    upper = lower + rng.random(dim)
    box = InputBox(lower, upper)
    coefficients = rng.normal(size=(3, dim))
    constants = rng.normal(size=3)
    low = concretize_lower(coefficients, constants, box)
    high = concretize_upper(coefficients, constants, box)
    for sample in box.sample(rng, count=20):
        values = coefficients @ sample + constants
        assert np.all(values >= low - 1e-9)
        assert np.all(values <= high + 1e-9)
