"""Equivalence regression tests: batched AppVer vs sequential evaluation.

``ApproximateVerifier.evaluate_batch`` must reproduce sequential
``evaluate`` results to 1e-9 — for batch sizes 1, 2 and 17, with and
without warmed cache prefixes, and including infeasible-split reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.linear_form import BatchedLinearForm, LinearForm
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.specs.robustness import local_robustness_spec
from repro.verifiers.appver import ApproximateVerifier

TOLERANCE = 1e-9


@pytest.fixture()
def medium_problem(small_network):
    reference = np.array([0.45, 0.55, 0.5, 0.4])
    label = int(small_network.predict(reference.reshape(1, -1))[0])
    spec = local_robustness_spec(reference, 0.12, label, 3, name="batched-spec")
    return small_network, spec


def _make_splits_pool(network, spec, seed=0):
    """A pool of assignments: empty, single, chained, and infeasible splits."""
    verifier = ApproximateVerifier(network, spec, use_cache=False)
    report = verifier.evaluate().report
    unstable = report.unstable_neurons()
    assert unstable, "fixture problem must have unstable neurons"

    rng = np.random.default_rng(seed)
    pool = [SplitAssignment.empty()]
    for layer, unit in unstable:
        pool.append(SplitAssignment.from_splits([ReluSplit(layer, unit, ACTIVE)]))
        pool.append(SplitAssignment.from_splits([ReluSplit(layer, unit, INACTIVE)]))
    for _ in range(8):
        chosen = rng.choice(len(unstable), size=min(2, len(unstable)), replace=False)
        splits = SplitAssignment.empty()
        for index in chosen:
            layer, unit = unstable[int(index)]
            phase = ACTIVE if rng.random() < 0.5 else INACTIVE
            splits = splits.with_split(ReluSplit(layer, unit, phase))
        pool.append(splits)

    # Force an infeasible sub-problem: a provably-active neuron split INACTIVE.
    stable_active = [(layer, unit)
                     for layer, bounds in enumerate(report.pre_activation_bounds)
                     for unit in range(bounds.size)
                     if bounds.lower[unit] > 1e-6]
    assert stable_active, "fixture problem must have a stably active neuron"
    layer, unit = stable_active[0]
    pool.append(SplitAssignment.from_splits([ReluSplit(layer, unit, INACTIVE)]))
    return pool


def _assert_outcomes_match(batched, sequential):
    assert len(batched) == len(sequential)
    for got, want in zip(batched, sequential):
        if want.p_hat == float("inf"):
            assert got.p_hat == float("inf")
        else:
            assert abs(got.p_hat - want.p_hat) <= TOLERANCE
        assert got.report.infeasible == want.report.infeasible
        assert got.is_valid_counterexample == want.is_valid_counterexample
        assert np.allclose(got.report.spec_row_lower, want.report.spec_row_lower,
                           atol=TOLERANCE)
        assert np.allclose(got.report.output_bounds.lower,
                           want.report.output_bounds.lower, atol=TOLERANCE)
        assert np.allclose(got.report.output_bounds.upper,
                           want.report.output_bounds.upper, atol=TOLERANCE)
        for got_bounds, want_bounds in zip(got.report.pre_activation_bounds,
                                           want.report.pre_activation_bounds):
            assert np.allclose(got_bounds.lower, want_bounds.lower, atol=TOLERANCE)
            assert np.allclose(got_bounds.upper, want_bounds.upper, atol=TOLERANCE)
        assert np.allclose(got.candidate, want.candidate, atol=TOLERANCE)


class TestEvaluateBatchEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 2, 17])
    @pytest.mark.parametrize("method", ["deeppoly", "ibp"])
    def test_matches_sequential_without_cache(self, medium_problem, batch_size, method):
        network, spec = medium_problem
        pool = _make_splits_pool(network, spec)
        batch = [pool[index % len(pool)] for index in range(batch_size)]
        sequential = [ApproximateVerifier(network, spec, method,
                                          use_cache=False).evaluate(splits)
                      for splits in batch]
        batched = ApproximateVerifier(network, spec, method,
                                      use_cache=False).evaluate_batch(batch)
        _assert_outcomes_match(batched, sequential)

    @pytest.mark.parametrize("batch_size", [1, 2, 17])
    def test_matches_sequential_with_cached_prefixes(self, medium_problem, batch_size):
        network, spec = medium_problem
        pool = _make_splits_pool(network, spec)
        batch = [pool[index % len(pool)] for index in range(batch_size)]
        sequential = [ApproximateVerifier(network, spec,
                                          use_cache=False).evaluate(splits)
                      for splits in batch]
        # Warm the cache with the root and a few parents, then batch-evaluate.
        verifier = ApproximateVerifier(network, spec, use_cache=True)
        verifier.evaluate()
        verifier.evaluate(pool[1])
        batched = verifier.evaluate_batch(batch)
        assert verifier.cache.stats.hits > 0
        _assert_outcomes_match(batched, sequential)
        # A second pass is served from the report cache and still matches.
        again = verifier.evaluate_batch(batch)
        _assert_outcomes_match(again, sequential)

    def test_infeasible_split_reports(self, medium_problem):
        network, spec = medium_problem
        pool = _make_splits_pool(network, spec)
        infeasible_splits = pool[-1]
        verifier = ApproximateVerifier(network, spec, use_cache=False)
        outcomes = verifier.evaluate_batch([SplitAssignment.empty(), infeasible_splits])
        assert not outcomes[0].report.infeasible
        assert outcomes[1].report.infeasible
        assert outcomes[1].p_hat == float("inf")
        assert outcomes[1].verified

    def test_empty_batch(self, medium_problem):
        network, spec = medium_problem
        verifier = ApproximateVerifier(network, spec)
        assert verifier.evaluate_batch([]) == []
        assert verifier.num_calls == 0

    def test_batch_charges_one_call_per_subproblem(self, medium_problem):
        network, spec = medium_problem
        pool = _make_splits_pool(network, spec)
        verifier = ApproximateVerifier(network, spec)
        verifier.evaluate_batch(pool[:5])
        assert verifier.num_calls == 5

    def test_none_entries_mean_empty_assignment(self, medium_problem):
        network, spec = medium_problem
        verifier = ApproximateVerifier(network, spec)
        outcome_none, outcome_empty = verifier.evaluate_batch(
            [None, SplitAssignment.empty()])
        assert outcome_none.p_hat == outcome_empty.p_hat

    def test_alpha_crown_batch_falls_back_to_sequential(self, medium_problem):
        network, spec = medium_problem
        pool = _make_splits_pool(network, spec)
        batch = pool[:2]
        sequential = [ApproximateVerifier(network, spec,
                                          "alpha-crown").evaluate(splits)
                      for splits in batch]
        batched = ApproximateVerifier(network, spec,
                                      "alpha-crown").evaluate_batch(batch)
        for got, want in zip(batched, sequential):
            assert got.p_hat == pytest.approx(want.p_hat, abs=TOLERANCE)


class TestBatchedLinearForm:
    def test_batched_form_matches_per_element_forms(self):
        rng = np.random.default_rng(3)
        coefficients = rng.standard_normal((4, 3, 5))
        constants = rng.standard_normal((4, 3))
        from repro.specs.properties import InputBox
        box = InputBox(np.zeros(5), np.ones(5))
        batched = BatchedLinearForm(coefficients, constants)
        assert batched.batch_size == 4
        assert batched.num_rows == 3
        assert batched.input_dim == 5
        x = rng.random(5)
        values = batched.evaluate(x)
        lower = batched.lower_bound(box)
        upper = batched.upper_bound(box)
        rows = np.array([0, 2, 1, 0])
        corners = batched.minimizers(box, rows)
        for index in range(4):
            form = batched.select(index)
            assert isinstance(form, LinearForm)
            assert np.allclose(values[index], form.evaluate(x))
            assert np.allclose(lower[index], form.lower_bound(box))
            assert np.allclose(upper[index], form.upper_bound(box))
            assert np.array_equal(corners[index],
                                  form.minimizer(box, int(rows[index])))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchedLinearForm(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            BatchedLinearForm(np.zeros((2, 3, 4)), np.zeros((2, 4)))
