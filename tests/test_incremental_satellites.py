"""Satellite features of the incremental-bounds PR.

Covers the stacked multi-objective leaf solve, the fingerprint-scoped
shareable :class:`~repro.bounds.cache.LpCache`, the robustness-radius sweep
helper, the α-CROWN parent warm start, and the per-phase timing surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.alpha_crown import AlphaCrownAnalyzer, AlphaCrownConfig
from repro.bounds.cache import LpCache
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.specs.robustness import local_robustness_spec, robustness_radius_sweep
from repro.utils.timing import Budget, PhaseTimings
from repro.verifiers.appver import ApproximateVerifier
from repro.verifiers.milp import (
    problem_fingerprint,
    solve_leaf_lp_batch,
)


def _problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


def _decided_leaves(network, spec, count=3, seed=11):
    """Fully phase-decided leaves with their own bound reports."""
    appver = ApproximateVerifier(network, spec, use_cache=False)
    rng = np.random.default_rng(seed)
    leaves = []
    for _ in range(count):
        splits = SplitAssignment.empty()
        outcome = appver.evaluate(splits)
        for _ in range(4):
            unstable = outcome.report.unstable_neurons(splits)
            if not unstable:
                break
            for layer, unit in unstable:
                phase = ACTIVE if rng.random() < 0.5 else INACTIVE
                splits = splits.with_split(ReluSplit(layer, unit, phase))
            outcome = appver.evaluate(splits)
        if not outcome.report.unstable_neurons(splits):
            leaves.append((splits, outcome.report))
    assert leaves, "fixture network must admit decided leaves"
    return appver.lowered, leaves


class TestStackedLeafRows:
    def test_stacked_equals_per_row(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        lowered, leaves = _decided_leaves(small_network, spec)
        stacked = solve_leaf_lp_batch(lowered, spec.input_box,
                                      spec.output_spec, leaves,
                                      stack_rows=True)
        per_row = solve_leaf_lp_batch(lowered, spec.input_box,
                                      spec.output_spec, leaves,
                                      stack_rows=False)
        for a, b in zip(stacked, per_row):
            assert a.feasible == b.feasible
            if a.feasible:
                assert a.value == pytest.approx(b.value, abs=1e-7)
                assert a.minimizer is not None and b.minimizer is not None

    def test_stacked_detects_infeasible_region(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        lowered, leaves = _decided_leaves(small_network, spec)
        splits, report = leaves[0]
        # Flip every decided phase of one leaf until the region empties; if
        # none empties, at least assert agreement per flip.
        for neuron in splits.decided_neurons():
            flipped = SplitAssignment({
                n: (-splits.phase_of(*n) if n == neuron else splits.phase_of(*n))
                for n in splits.decided_neurons()})
            stacked = solve_leaf_lp_batch(lowered, spec.input_box,
                                          spec.output_spec,
                                          [(flipped, report)],
                                          stack_rows=True)[0]
            per_row = solve_leaf_lp_batch(lowered, spec.input_box,
                                          spec.output_spec,
                                          [(flipped, report)],
                                          stack_rows=False)[0]
            assert stacked.feasible == per_row.feasible
            if stacked.feasible:
                assert stacked.value == pytest.approx(per_row.value, abs=1e-7)


class TestFingerprintScopedLpCache:
    def test_fingerprint_identifies_problem(self, small_network):
        lowered = small_network.lowered()
        spec_a = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        spec_b = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.13)
        fp_a = problem_fingerprint(lowered, spec_a.input_box, spec_a.output_spec)
        fp_b = problem_fingerprint(lowered, spec_b.input_box, spec_b.output_spec)
        fp_a2 = problem_fingerprint(lowered, spec_a.input_box, spec_a.output_spec)
        assert fp_a == fp_a2
        assert fp_a != fp_b  # nearby epsilon -> different box -> new scope

    def test_shared_cache_never_crosses_epsilons(self, small_network):
        """The same canonical key at two radii must resolve independently."""
        spec_a = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.10)
        spec_b = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.14)
        lowered_a, leaves_a = _decided_leaves(small_network, spec_a)
        shared = LpCache()
        fp_a = problem_fingerprint(lowered_a, spec_a.input_box,
                                   spec_a.output_spec)
        fp_b = problem_fingerprint(lowered_a, spec_b.input_box,
                                   spec_b.output_spec)
        splits, _ = leaves_a[0]
        # Decide any neurons the wider box destabilises, so ONE canonical
        # assignment is a valid leaf under BOTH radii; the narrower box can
        # only stabilise further.
        appver_b = ApproximateVerifier(small_network, spec_b, use_cache=False)
        report_b = appver_b.evaluate(splits).report
        for _ in range(4):
            unstable = report_b.unstable_neurons(splits)
            if not unstable:
                break
            for layer, unit in unstable:
                splits = splits.with_split(ReluSplit(layer, unit, ACTIVE))
            report_b = appver_b.evaluate(splits).report
        assert not report_b.unstable_neurons(splits)
        appver_a = ApproximateVerifier(small_network, spec_a, use_cache=False)
        report_a = appver_a.evaluate(splits).report
        assert not report_a.unstable_neurons(splits)
        first = solve_leaf_lp_batch(lowered_a, spec_a.input_box,
                                    spec_a.output_spec, [(splits, report_a)],
                                    cache=shared, fingerprint=fp_a)[0]
        second = solve_leaf_lp_batch(lowered_a, spec_b.input_box,
                                     spec_b.output_spec, [(splits, report_b)],
                                     cache=shared, fingerprint=fp_b)[0]
        assert shared.stats.solves == 2  # no unsound cross-epsilon hit
        unshared = solve_leaf_lp_batch(lowered_a, spec_b.input_box,
                                       spec_b.output_spec,
                                       [(splits, report_b)])[0]
        assert second.feasible == unshared.feasible
        if second.feasible:
            assert second.value == pytest.approx(unshared.value, abs=1e-9)
        # Same problem again: served from the shared cache.
        again = solve_leaf_lp_batch(lowered_a, spec_a.input_box,
                                    spec_a.output_spec, [(splits, report_a)],
                                    cache=shared, fingerprint=fp_a)[0]
        assert again is first
        assert shared.stats.solves == 2


class TestRobustnessRadiusSweep:
    def test_sweep_matches_unshared_runs(self, small_network):
        reference = np.array([0.45, 0.55, 0.5, 0.4])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        epsilons = (0.06, 0.12, 0.06)
        swept, cache = robustness_radius_sweep(
            lambda lp_cache: AbonnVerifier(AbonnConfig(), lp_cache=lp_cache),
            small_network, reference, epsilons, label, 3,
            budget=Budget(max_nodes=96))
        assert [eps for eps, _ in swept] == [pytest.approx(e) for e in epsilons]
        for (epsilon, shared_result) in swept:
            spec = local_robustness_spec(reference, epsilon, label, 3)
            solo = AbonnVerifier(AbonnConfig()).verify(
                small_network, spec, Budget(max_nodes=96))
            assert shared_result.status == solo.status
            assert shared_result.nodes_explored == solo.nodes_explored
        # The repeated epsilon re-uses the first run's solves when any leaf
        # LP ran at all (hits only possible once something was cached).
        stats = cache.stats
        assert stats.solves >= 0
        if stats.solves:
            assert stats.hits >= 0


class TestAlphaWarmStart:
    def test_warm_start_reuses_parent_slopes(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        lowered = small_network.lowered()
        analyzer = AlphaCrownAnalyzer(lowered, AlphaCrownConfig(iterations=2))
        parent = SplitAssignment.empty()
        parent_report = analyzer.analyze(spec.input_box, parent,
                                         spec=spec.output_spec)
        unstable = parent_report.unstable_neurons()
        assert unstable
        layer, unit = unstable[0]
        child = parent.with_split(ReluSplit(layer, unit, ACTIVE))
        assert analyzer.warm_starts == 0
        child_report = analyzer.analyze(spec.input_box, child,
                                        spec=spec.output_spec, parent=parent)
        assert analyzer.warm_starts == 1
        # Warm-started bounds stay sound: p_hat is a valid lower bound.
        cold = AlphaCrownAnalyzer(lowered, AlphaCrownConfig(iterations=2))
        cold_report = cold.analyze(spec.input_box, child, spec=spec.output_spec)
        for point in spec.input_box.sample(rng=3, count=16):
            if not child.satisfied_by(lowered.pre_activations(point)):
                continue
            margin = spec.output_spec.margin(
                np.asarray(small_network.forward(point.reshape(1, -1))).reshape(-1))
            assert child_report.p_hat <= margin + 1e-7
            assert cold_report.p_hat <= margin + 1e-7

    def test_warm_start_disabled_by_config(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        lowered = small_network.lowered()
        analyzer = AlphaCrownAnalyzer(
            lowered, AlphaCrownConfig(iterations=1, warm_start=False))
        parent = SplitAssignment.empty()
        report = analyzer.analyze(spec.input_box, parent, spec=spec.output_spec)
        unstable = report.unstable_neurons()
        assert unstable
        child = parent.with_split(ReluSplit(*unstable[0], ACTIVE))
        analyzer.analyze(spec.input_box, child, spec=spec.output_spec,
                         parent=parent)
        assert analyzer.warm_starts == 0

    def test_batched_warm_start_skips_initial_pass(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        lowered = small_network.lowered()
        analyzer = AlphaCrownAnalyzer(lowered, AlphaCrownConfig(iterations=1))
        parent = SplitAssignment.empty()
        report = analyzer.analyze(spec.input_box, parent, spec=spec.output_spec)
        unstable = report.unstable_neurons()
        assert unstable
        layer, unit = unstable[0]
        children = [parent.with_split(ReluSplit(layer, unit, phase))
                    for phase in (ACTIVE, INACTIVE)]
        reports = analyzer.analyze_batch(spec.input_box, children,
                                         spec=spec.output_spec,
                                         parents=[parent, parent])
        assert analyzer.warm_starts == 2
        for child_report in reports:
            assert child_report.method == "alpha-crown"


class TestPhaseTimings:
    def test_phase_timings_accumulate(self):
        timings = PhaseTimings()
        with timings.measure("substitute"):
            pass
        timings.record("lp", 0.5, count=2)
        payload = timings.as_dict()
        assert set(payload) == {"lp", "substitute"}
        assert payload["lp"]["seconds"] == pytest.approx(0.5)
        assert payload["lp"]["count"] == 2
        assert payload["substitute"]["count"] == 1
        timings.clear()
        assert timings.as_dict() == {}
        assert timings.seconds("lp") == 0.0

    def test_verifier_surfaces_timings(self, small_network):
        spec = _problem(small_network, [0.45, 0.55, 0.5, 0.4], 0.12)
        result = AbonnVerifier(AbonnConfig(frontier_size=2)).verify(
            small_network, spec, Budget(max_nodes=64))
        timings = result.extras["timings"]
        assert "substitute" in timings
        assert timings["substitute"]["seconds"] >= 0.0
        if result.extras["bound_cache"]["delta_corrections"]:
            assert "correct" in timings
        if result.extras["lp_cache"]["solves"]:
            assert "lp" in timings
