"""The project-invariant linter: every rule fires, and the tree is clean.

Each rule gets three fixture checks — a known-bad snippet it must flag, a
known-good snippet it must pass, and a suppressed copy of the bad snippet
it must silence (with a justification) — plus framework tests for the
suppression grammar, scoping and the CLI.  The clean-tree tests pin the
acceptance invariant: ``python -m tools.lint --all src tools tests`` exits
zero on this repository.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint import REGISTRY, Finding, parse_suppressions, run_lint  # noqa: E402
from lint.core import FRAMEWORK_RULE_IDS  # noqa: E402


def lint_snippet(tmp_path, relpath, source):
    """Write ``source`` at ``tmp_path/relpath`` and lint it from that root."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([str(path)], root=tmp_path)


def rule_ids(report):
    return {finding.rule for finding in report.findings}


class TestFramework:
    def test_all_six_rules_registered(self):
        import lint.rules  # noqa: F401 - populates the registry

        assert set(REGISTRY) == {
            "lock-discipline", "rng-discipline", "wallclock-discipline",
            "exception-discipline", "payload-pickle-safety",
            "api-annotations",
        }

    def test_finding_format_is_file_line_rule_message(self):
        finding = Finding("src/x.py", 7, "rng-discipline", "no dice")
        assert finding.format() == "src/x.py:7 rng-discipline no dice"

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        report = lint_snippet(tmp_path, "src/broken.py", "def broken(:\n")
        assert rule_ids(report) == {"parse-error"}

    def test_scoping_keeps_src_rules_out_of_tests(self, tmp_path):
        report = lint_snippet(tmp_path, "tests/test_x.py", """\
            import random
            import time

            def jitter():
                return random.random() * time.time()
            """)
        assert report.ok

    def test_missing_target_fails_the_run(self, tmp_path):
        report = run_lint([str(tmp_path / "nope.py")], root=tmp_path)
        assert not report.ok
        assert report.missing


#: Built by concatenation so the linter never reads this test file's own
#: fixture strings as real (malformed) suppressions of test_lint.py.
MARKER = "# lint: " + "disable="


class TestSuppressions:
    def test_suppression_without_justification_is_a_finding(self):
        sup = parse_suppressions(
            "src/x.py", [f"x = 1  {MARKER}rng-discipline"],
            known_ids={"rng-discipline", "all"} | set(FRAMEWORK_RULE_IDS))
        assert [f.rule for f in sup.findings] == ["suppression"]
        assert not sup.by_line

    def test_unknown_rule_id_is_a_finding_and_not_honoured(self):
        sup = parse_suppressions(
            "src/x.py", [f"x = 1  {MARKER}rgn-discipline - typo"],
            known_ids={"rng-discipline", "all"} | set(FRAMEWORK_RULE_IDS))
        assert [f.rule for f in sup.findings] == ["suppression"]
        assert not sup.by_line

    def test_justified_suppression_silences_only_its_line(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            import numpy as np

            def draw():
                np.random.seed(0)  # lint: disable=rng-discipline - fixture
                return np.random.rand()
            """)
        assert [f.line for f in report.findings] == [5]
        assert [f.line for f in report.suppressed] == [4]

    def test_disable_all_silences_every_rule_on_the_line(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            import time

            def now():
                return time.time()  # lint: disable=all - fixture
            """)
        assert report.ok
        assert report.suppressed


class TestLockDiscipline:
    BAD = """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                self.count += 1
        """

    def test_flags_unlocked_write_in_lock_owning_class(self, tmp_path):
        report = lint_snippet(tmp_path, "src/box.py", self.BAD)
        assert rule_ids(report) == {"lock-discipline"}
        assert report.findings[0].line == 9

    def test_passes_write_under_the_lock(self, tmp_path):
        report = lint_snippet(tmp_path, "src/box.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """)
        assert report.ok

    def test_passes_class_without_its_own_lock(self, tmp_path):
        report = lint_snippet(tmp_path, "src/box.py", """\
            class Plain:
                def bump(self):
                    self.count = 1
            """)
        assert report.ok

    def test_init_and_subscript_stores_are_exempt(self, tmp_path):
        report = lint_snippet(tmp_path, "src/box.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = {}
                    self.count = 0

                def enqueue(self, job):
                    self.jobs[job.id] = job
            """)
        assert report.ok

    def test_suppression_silences_it(self, tmp_path):
        suppressed = self.BAD.replace(
            "self.count += 1",
            "self.count += 1  # lint: disable=lock-discipline - fixture")
        report = lint_snippet(tmp_path, "src/box.py", suppressed)
        assert report.ok
        assert report.suppressed


class TestRngDiscipline:
    def test_flags_numpy_module_state_even_aliased(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            import numpy as xyz

            def draw():
                return xyz.random.rand(3)
            """)
        assert rule_ids(report) == {"rng-discipline"}

    def test_flags_stdlib_random_import(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", "import random\n")
        assert rule_ids(report) == {"rng-discipline"}

    def test_passes_seeded_generator_construction(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(np.random.SeedSequence(seed))
            """)
        assert report.ok


class TestWallclockDiscipline:
    def test_flags_time_time_even_via_from_import(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            from time import perf_counter

            def tick():
                return perf_counter()
            """)
        findings = [f for f in report.findings
                    if f.rule == "wallclock-discipline"]
        assert findings  # both the import and the call are flagged

    def test_flags_datetime_now(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            from datetime import datetime

            def stamp():
                return datetime.now()
            """)
        assert rule_ids(report) == {"wallclock-discipline"}

    def test_passes_monotonic_and_the_timing_module(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            import time

            def deadline(seconds):
                return time.monotonic() + seconds
            """)
        assert report.ok
        exempt = lint_snippet(tmp_path, "src/repro/utils/timing.py", """\
            import time

            def read_clock():
                return time.perf_counter()
            """)
        assert exempt.ok


class TestExceptionDiscipline:
    def test_flags_bare_except(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            def swallow(op):
                try:
                    op()
                except:
                    pass
            """)
        assert rule_ids(report) == {"exception-discipline"}

    def test_flags_unmarked_broad_except(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            def isolate(op):
                try:
                    op()
                except Exception:
                    pass
            """)
        assert rule_ids(report) == {"exception-discipline"}

    def test_noqa_ble001_with_reason_is_the_sanctioned_marker(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            def isolate(op):
                try:
                    op()
                except Exception:  # noqa: BLE001 - worker isolation boundary
                    pass
            """)
        assert report.ok

    def test_narrow_handler_needs_no_marker(self, tmp_path):
        report = lint_snippet(tmp_path, "src/mod.py", """\
            def read(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """)
        assert report.ok


class TestPayloadPickleSafety:
    def test_flags_callable_field_on_a_payload_class(self, tmp_path):
        report = lint_snippet(tmp_path, "src/jobs.py", """\
            from dataclasses import dataclass
            from typing import Callable, Optional


            @dataclass(frozen=True)
            class JobRequest:
                callback: Optional[Callable[[], None]] = None
            """)
        assert rule_ids(report) == {"payload-pickle-safety"}

    def test_passes_structural_fields(self, tmp_path):
        report = lint_snippet(tmp_path, "src/jobs.py", """\
            from dataclasses import dataclass, field
            from typing import Dict, Optional

            import numpy as np


            @dataclass(frozen=True)
            class JobRequest:
                priority: int = 0
                deadline_seconds: Optional[float] = None
                witness: Optional[np.ndarray] = None
                metadata: Dict[str, object] = field(default_factory=dict)
            """)
        assert report.ok

    def test_non_payload_classes_are_not_checked(self, tmp_path):
        report = lint_snippet(tmp_path, "src/other.py", """\
            from dataclasses import dataclass
            from typing import Callable


            @dataclass
            class LocalPlan:
                op: Callable[[], None]
            """)
        assert report.ok


class TestApiAnnotations:
    def test_flags_unannotated_public_callable_on_the_surface(self, tmp_path):
        report = lint_snippet(tmp_path, "src/repro/engine/mod.py", """\
            class Driver:
                def run(self, item):
                    return item
            """)
        assert rule_ids(report) == {"api-annotations"}
        assert "item" in report.findings[0].message
        assert "return" in report.findings[0].message

    def test_passes_fully_annotated_callable(self, tmp_path):
        report = lint_snippet(tmp_path, "src/repro/engine/mod.py", """\
            class Driver:
                def run(self, item: object) -> object:
                    return item
            """)
        assert report.ok

    def test_private_callables_and_other_paths_are_exempt(self, tmp_path):
        surface = lint_snippet(tmp_path, "src/repro/engine/mod.py", """\
            class Driver:
                def _step(self, item):
                    return item
            """)
        assert surface.ok
        elsewhere = lint_snippet(tmp_path, "src/repro/bounds/mod.py", """\
            def helper(x):
                return x
            """)
        assert elsewhere.ok


class TestCleanTree:
    def test_repository_is_lint_clean(self):
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools"),
                           str(REPO_ROOT / "tests")], root=REPO_ROOT)
        assert report.findings == [], \
            "\n".join(f.format() for f in report.findings)

    def test_every_repository_suppression_is_justified(self):
        # The parser only honours justified suppressions, so a clean run
        # with a nonzero suppressed count certifies both halves at once.
        report = run_lint([str(REPO_ROOT / "src")], root=REPO_ROOT)
        assert report.ok
        assert report.suppressed, "expected the documented suppressions"

    def test_cli_all_gates_exit_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--all",
             "src", "tools", "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "docstring gate" in proc.stdout
        assert "markdown-link gate" in proc.stdout

    def test_cli_without_targets_is_a_usage_error(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 2

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        for rule_id in ("lock-discipline", "rng-discipline",
                        "wallclock-discipline", "exception-discipline",
                        "payload-pickle-safety", "api-annotations"):
            assert rule_id in proc.stdout
