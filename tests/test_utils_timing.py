"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Budget, Stopwatch


class TestStopwatch:
    def test_elapsed_increases_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        assert watch.elapsed > 0.0

    def test_stop_freezes_elapsed(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        frozen = watch.stop()
        time.sleep(0.005)
        assert watch.elapsed == pytest.approx(frozen)

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed > 0.0

    def test_started_flag_tracks_lifecycle(self):
        watch = Stopwatch()
        assert not watch.started
        watch.start()
        assert watch.started
        watch.stop()
        assert watch.started  # stopped, but the origin is still pinned
        watch.reset()
        assert not watch.started


class TestBudget:
    def test_node_budget_exhaustion(self):
        budget = Budget(max_nodes=3).start()
        assert not budget.exhausted()
        budget.charge_node(3)
        assert budget.exhausted()

    def test_unlimited_budget_never_exhausts(self):
        budget = Budget().start()
        budget.charge_node(10_000)
        assert not budget.exhausted()

    def test_time_budget(self):
        budget = Budget(max_seconds=0.001).start()
        time.sleep(0.01)
        assert budget.exhausted()

    def test_remaining_nodes(self):
        budget = Budget(max_nodes=10).start()
        budget.charge_node(4)
        assert budget.remaining_nodes() == 6

    def test_remaining_nodes_unlimited(self):
        assert Budget().remaining_nodes() is None

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            Budget().charge_node(-1)

    def test_copy_resets_consumption(self):
        budget = Budget(max_nodes=5).start()
        budget.charge_node(5)
        fresh = budget.copy()
        assert fresh.nodes == 0
        assert fresh.max_nodes == 5
        assert not fresh.start().exhausted()


class TestBudgetAutoStart:
    """Regression: an unstarted ``max_seconds`` was silently a no-op.

    The unstarted stopwatch reported 0 s forever, so a budget handed to a
    consumer that never called ``start()`` could not time out.  The clock
    now auto-starts on the first ``exhausted()`` check (or
    ``elapsed_seconds`` read).
    """

    def test_unstarted_time_budget_still_triggers(self):
        budget = Budget(max_seconds=0.001)  # note: no .start()
        budget.exhausted()  # first check auto-starts the clock
        time.sleep(0.01)
        assert budget.exhausted()

    def test_unstarted_elapsed_seconds_grows(self):
        budget = Budget()  # note: no .start()
        first = budget.elapsed_seconds
        time.sleep(0.005)
        assert budget.elapsed_seconds > first

    def test_explicit_start_pins_the_origin(self):
        budget = Budget(max_seconds=100.0).start()
        time.sleep(0.005)
        assert budget.elapsed_seconds > 0.0
