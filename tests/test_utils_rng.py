"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rng


class TestAsRng:
    def test_none_gives_deterministic_generator(self):
        first = as_rng(None).random(5)
        second = as_rng(None).random(5)
        np.testing.assert_allclose(first, second)

    def test_integer_seed_is_deterministic(self):
        np.testing.assert_allclose(as_rng(42).random(4), as_rng(42).random(4))

    def test_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).random(8), as_rng(2).random(8))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert as_rng(generator) is generator


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(as_rng(0), 4)
        assert len(children) == 4

    def test_spawn_children_are_independent(self):
        children = spawn_rng(as_rng(0), 2)
        assert not np.allclose(children[0].random(6), children[1].random(6))

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), -1)

    def test_spawn_zero(self):
        assert spawn_rng(as_rng(0), 0) == []


class TestDeriveSeed:
    def test_deterministic_for_strings(self):
        assert derive_seed(0, "MNIST_L2") == derive_seed(0, "MNIST_L2")

    def test_different_components_differ(self):
        assert derive_seed(0, "MNIST_L2") != derive_seed(0, "CIFAR_BASE")

    def test_different_base_seeds_differ(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_accepts_integers(self):
        assert derive_seed(5, 7, 9) == derive_seed(5, 7, 9)

    def test_result_in_int32_range(self):
        for seed in range(20):
            value = derive_seed(seed, "family", seed * 3)
            assert 0 <= value < 2**31 - 1
