"""Tests for frontier-wide batched expansion (ABONN, BaB-baseline, αβ-CROWN).

The contract under test (see ``docs/BATCHING.md``):

* ``frontier_size=1`` reproduces the sequential drivers exactly;
* larger frontiers return identical verdicts on the seed families, with
  counterexamples that remain real and budget edges that still time out;
* the realised ``evaluate_batch`` sizes grow with the frontier and are
  observable through the result extras.
"""

import numpy as np
import pytest

from repro.bab import BaBBaselineVerifier
from repro.baselines.alphabeta_crown import AlphaBetaCrownVerifier
from repro.bounds.splits import ACTIVE, INACTIVE, ReluSplit, SplitAssignment
from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.core.mcts import (
    MctsNode,
    descend_to_leaf,
    select_frontier,
)
from repro.core.potentiality import PotentialityScorer
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.appver import ApproximateVerifier
from repro.verifiers.result import VerificationStatus


def problem(network, dataset, index, epsilon):
    image, label = dataset.sample(index)
    return local_robustness_spec(image.reshape(-1), epsilon, label,
                                 dataset.num_classes)


def _make_tree():
    """A small hand-built MCTS tree: root with two expanded children."""
    root = MctsNode(SplitAssignment.empty(), depth=0, outcome=None)
    root.reward = 0.5
    left = MctsNode(SplitAssignment.from_splits([ReluSplit(0, 0, ACTIVE)]),
                    depth=1, outcome=None, parent=root)
    right = MctsNode(SplitAssignment.from_splits([ReluSplit(0, 0, INACTIVE)]),
                     depth=1, outcome=None, parent=root)
    left.reward, right.reward = 0.5, 0.4
    root.children = {ACTIVE: left, INACTIVE: right}
    root.subtree_size = 3
    return root, left, right


class TestSelectFrontier:
    def test_selects_distinct_leaves_up_to_limit(self):
        root, left, right = _make_tree()
        leaves = select_frontier(root, exploration=0.2, limit=8)
        assert len(leaves) == 2
        assert leaves[0] is left  # higher reward first
        assert leaves[1] is right
        assert len({id(leaf) for leaf in leaves}) == 2

    def test_limit_one_matches_sequential_descent(self):
        root, left, _ = _make_tree()
        assert descend_to_leaf(root, 0.2) is left
        assert select_frontier(root, 0.2, 1) == [left]

    def test_restores_rewards_and_sizes(self):
        root, left, right = _make_tree()
        before = [(node, node.reward, node.subtree_size)
                  for node in (root, left, right)]
        select_frontier(root, exploration=0.2, limit=8)
        for node, reward, size in before:
            assert node.reward == reward
            assert node.subtree_size == size

    def test_unexpanded_root_selected_once(self):
        root = MctsNode(SplitAssignment.empty(), depth=0, outcome=None)
        root.reward = 0.3
        leaves = select_frontier(root, exploration=0.2, limit=8)
        assert leaves == [root]
        assert root.reward == 0.3

    def test_exhausted_branches_are_never_selected(self):
        root, left, right = _make_tree()
        right.reward = float("-inf")  # verified branch
        leaves = select_frontier(root, exploration=0.2, limit=8)
        assert leaves == [left]


class TestAbonnFrontierVerdicts:
    @pytest.mark.parametrize("index,epsilon", [(12, 0.2), (13, 0.2), (14, 0.2),
                                               (13, 0.12), (25, 0.12)])
    def test_verdicts_identical_across_frontier_sizes(self, index, epsilon,
                                                      trained_network):
        network, dataset = trained_network
        spec = problem(network, dataset, index, epsilon)
        results = {
            frontier: AbonnVerifier(AbonnConfig(frontier_size=frontier)).verify(
                network, spec, Budget(max_nodes=2000))
            for frontier in (1, 2, 8)
        }
        statuses = {result.status for result in results.values()}
        assert len(statuses) == 1
        for result in results.values():
            if result.status == VerificationStatus.FALSIFIED:
                assert spec.is_counterexample(network, result.counterexample)

    def test_realised_batch_grows_with_frontier(self, trained_network):
        network, dataset = trained_network
        spec = problem(network, dataset, 13, 0.2)  # instance that branches
        means = {}
        for frontier in (1, 8):
            result = AbonnVerifier(AbonnConfig(frontier_size=frontier)).verify(
                network, spec, Budget(max_nodes=2000))
            stats = result.extras["bound_cache"]
            assert stats["batch_histogram"], "no batched call was recorded"
            means[frontier] = stats["mean_realised_batch"]
            assert result.extras["frontier_size"] == frontier
        assert means[1] <= 2.0
        assert means[8] > 2.0

    @pytest.mark.parametrize("max_nodes", [3, 15])
    def test_budget_exhaustion_edges(self, max_nodes, trained_network):
        network, dataset = trained_network
        for frontier in (1, 2, 8):
            for index in (18, 19, 20):
                spec = problem(network, dataset, index, 0.25)
                budget = Budget(max_nodes=max_nodes)
                result = AbonnVerifier(AbonnConfig(frontier_size=frontier)).verify(
                    network, spec, budget)
                assert result.status in (VerificationStatus.TIMEOUT,
                                         VerificationStatus.VERIFIED,
                                         VerificationStatus.FALSIFIED)
                # Planned charges respect the node budget: batched evaluation
                # never evaluates children the budget cannot afford, and LP
                # leaf resolutions between frontier leaves stay within it.
                assert result.nodes_explored <= max_nodes + 1
                assert budget.nodes <= max_nodes

    def test_infeasible_split_children_are_exhausted(self, small_network):
        """A frontier batch containing an infeasible child must mark it
        verified (reward -inf), exactly as the sequential expansion does."""
        reference = np.array([0.4, 0.5, 0.6, 0.3])
        label = int(small_network.predict(reference.reshape(1, -1))[0])
        spec = local_robustness_spec(reference, 0.12, label, 3)
        appver = ApproximateVerifier(small_network, spec)
        root_report = appver.evaluate().report
        stable = None
        for layer, bounds in enumerate(root_report.pre_activation_bounds):
            negative = np.where(bounds.upper < 0)[0]
            if len(negative):
                stable = (layer, int(negative[0]))
                break
        assert stable is not None, "fixture network must have a stable-off neuron"
        # Forcing a stable-off neuron ACTIVE empties the region.
        splits = SplitAssignment.from_splits([ReluSplit(stable[0], stable[1], ACTIVE)])
        outcomes = appver.evaluate_batch([splits, SplitAssignment.empty()])
        assert outcomes[0].report.infeasible
        verifier = AbonnVerifier()
        scorer = PotentialityScorer(appver.num_relu_neurons, 0.5)
        parent = MctsNode(SplitAssignment.empty(), depth=0, outcome=outcomes[1])
        child = verifier._make_child(parent, splits, outcomes[0], scorer)
        assert child.reward == float("-inf")

    def test_frontier_with_alpha_crown_backend(self, trained_network):
        network, dataset = trained_network
        spec = problem(network, dataset, 13, 0.12)
        results = {
            frontier: AbonnVerifier(AbonnConfig(bound_method="alpha-crown",
                                                frontier_size=frontier)).verify(
                network, spec, Budget(max_nodes=60))
            for frontier in (1, 4)
        }
        assert results[1].status == results[4].status


class TestBaselineFrontiers:
    @pytest.mark.parametrize("exploration", ["bfs", "dfs"])
    def test_bab_baseline_verdicts_identical(self, exploration, trained_network):
        network, dataset = trained_network
        for index, epsilon in ((12, 0.2), (13, 0.2), (13, 0.12)):
            spec = problem(network, dataset, index, epsilon)
            results = {
                frontier: BaBBaselineVerifier(exploration=exploration,
                                              frontier_size=frontier).verify(
                    network, spec, Budget(max_nodes=2000))
                for frontier in (1, 2, 8)
            }
            statuses = {result.status for result in results.values()}
            assert len(statuses) == 1
            for result in results.values():
                if result.status == VerificationStatus.FALSIFIED:
                    assert spec.is_counterexample(network, result.counterexample)

    def test_bab_baseline_frontier_one_is_sequential(self, trained_network):
        """K=1 must be charge-for-charge identical to the sequential loop."""
        network, dataset = trained_network
        spec = problem(network, dataset, 13, 0.2)
        default = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=500))
        explicit = BaBBaselineVerifier(frontier_size=1).verify(
            network, spec, Budget(max_nodes=500))
        assert default.status == explicit.status
        assert default.nodes_explored == explicit.nodes_explored
        assert default.extras["nodes_expanded"] == explicit.extras["nodes_expanded"]

    def test_bab_baseline_budget_edges(self, trained_network):
        network, dataset = trained_network
        spec = problem(network, dataset, 19, 0.25)
        for frontier in (1, 4):
            result = BaBBaselineVerifier(frontier_size=frontier).verify(
                network, spec, Budget(max_nodes=10))
            assert result.status in (VerificationStatus.TIMEOUT,
                                     VerificationStatus.VERIFIED,
                                     VerificationStatus.FALSIFIED)
            assert result.nodes_explored <= 11

    def test_budget_starvation_never_verifies_falsifiable(self, trained_network):
        """When the gather loop runs out of node budget mid-frontier, the
        unexpandable sub-problem must stay queued: the run times out rather
        than returning a spurious VERIFIED from an emptied queue/heap."""
        network, dataset = trained_network
        spec = problem(network, dataset, 13, 0.2)
        reference = BaBBaselineVerifier().verify(network, spec,
                                                 Budget(max_nodes=2000))
        assert reference.status == VerificationStatus.FALSIFIED
        for frontier in (2, 4, 8):
            for max_nodes in range(3, 12):
                for verifier in (BaBBaselineVerifier(frontier_size=frontier),
                                 AlphaBetaCrownVerifier(frontier_size=frontier)):
                    result = verifier.verify(network, spec,
                                             Budget(max_nodes=max_nodes))
                    assert result.status != VerificationStatus.VERIFIED

    def test_alphabeta_crown_verdicts_identical(self, trained_network):
        network, dataset = trained_network
        for index, epsilon in ((12, 0.2), (13, 0.2)):
            spec = problem(network, dataset, index, epsilon)
            results = {
                frontier: AlphaBetaCrownVerifier(frontier_size=frontier).verify(
                    network, spec, Budget(max_nodes=2000))
                for frontier in (1, 4)
            }
            assert results[1].status == results[4].status

    def test_invalid_frontier_size_rejected(self):
        with pytest.raises(ValueError):
            AbonnConfig(frontier_size=0)
        with pytest.raises(ValueError):
            BaBBaselineVerifier(frontier_size=0)
        with pytest.raises(ValueError):
            AlphaBetaCrownVerifier(frontier_size=-1)
