"""Tests for repro.core.potentiality (Def. 1 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.potentiality import PotentialityScorer, counterexample_potentiality


class TestDefinitionCases:
    def test_verified_node_has_minus_infinity(self):
        assert counterexample_potentiality(0.5, False, 3, 10, 0.5, -1.0) == float("-inf")

    def test_valid_counterexample_has_plus_infinity(self):
        assert counterexample_potentiality(-0.5, True, 3, 10, 0.5, -1.0) == float("inf")

    def test_false_alarm_is_finite_and_in_unit_interval(self):
        value = counterexample_potentiality(-0.5, False, 3, 10, 0.5, -1.0)
        assert 0.0 <= value <= 1.0

    def test_matches_formula(self):
        lam, depth, total, p_hat, p_min = 0.3, 4, 20, -0.6, -2.0
        expected = lam * depth / total + (1 - lam) * (p_hat / p_min)
        assert counterexample_potentiality(p_hat, False, depth, total, lam, p_min) \
            == pytest.approx(expected)

    def test_zero_p_hat_uses_depth_only(self):
        value = counterexample_potentiality(0.0, False, 5, 10, 0.5, -1.0)
        assert value == pytest.approx(0.5 * 0.5)


class TestMonotonicity:
    def test_deeper_nodes_score_higher(self):
        shallow = counterexample_potentiality(-0.5, False, 1, 10, 0.5, -1.0)
        deep = counterexample_potentiality(-0.5, False, 5, 10, 0.5, -1.0)
        assert deep > shallow

    def test_more_negative_bounds_score_higher(self):
        mild = counterexample_potentiality(-0.1, False, 2, 10, 0.5, -1.0)
        severe = counterexample_potentiality(-0.9, False, 2, 10, 0.5, -1.0)
        assert severe > mild

    def test_lambda_zero_ignores_depth(self):
        a = counterexample_potentiality(-0.4, False, 1, 10, 0.0, -1.0)
        b = counterexample_potentiality(-0.4, False, 9, 10, 0.0, -1.0)
        assert a == pytest.approx(b)

    def test_lambda_one_ignores_bound(self):
        a = counterexample_potentiality(-0.1, False, 3, 10, 1.0, -1.0)
        b = counterexample_potentiality(-0.9, False, 3, 10, 1.0, -1.0)
        assert a == pytest.approx(b)


class TestNormalisation:
    def test_depth_term_clamped_at_one(self):
        value = counterexample_potentiality(0.0, False, 50, 10, 1.0, -1.0)
        assert value == pytest.approx(1.0)

    def test_violation_term_clamped_at_one(self):
        value = counterexample_potentiality(-5.0, False, 0, 10, 0.0, -1.0)
        assert value == pytest.approx(1.0)

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            counterexample_potentiality(-0.5, False, 1, 10, 1.5, -1.0)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            counterexample_potentiality(-0.5, False, -1, 10, 0.5, -1.0)

    def test_invalid_neuron_count_rejected(self):
        with pytest.raises(ValueError):
            counterexample_potentiality(-0.5, False, 1, 0, 0.5, -1.0)


class TestScorer:
    def test_observe_tracks_most_negative_bound(self):
        scorer = PotentialityScorer(num_relu_neurons=10, lam=0.5)
        scorer.observe(-0.5)
        scorer.observe(-2.0)
        scorer.observe(-1.0)
        assert scorer.p_hat_min == pytest.approx(-2.0)

    def test_observe_ignores_positive_and_minus_infinity(self):
        scorer = PotentialityScorer(num_relu_neurons=10, lam=0.5)
        scorer.observe(-1.0)
        scorer.observe(0.7)
        scorer.observe(float("-inf"))
        assert scorer.p_hat_min == pytest.approx(-1.0)

    def test_score_uses_current_normalisation(self):
        scorer = PotentialityScorer(num_relu_neurons=10, lam=0.0)
        scorer.observe(-2.0)
        assert scorer.score(-1.0, False, 0) == pytest.approx(0.5)

    def test_score_special_cases(self):
        scorer = PotentialityScorer(num_relu_neurons=10, lam=0.5)
        assert scorer.score(0.3, False, 2) == float("-inf")
        assert scorer.score(-0.3, True, 2) == float("inf")


@settings(max_examples=50, deadline=None)
@given(p_hat=st.floats(min_value=-10.0, max_value=-1e-6),
       depth=st.integers(min_value=0, max_value=100),
       total=st.integers(min_value=1, max_value=100),
       lam=st.floats(min_value=0.0, max_value=1.0),
       p_min=st.floats(min_value=-10.0, max_value=-1e-3))
def test_false_alarm_potentiality_always_in_unit_interval(p_hat, depth, total, lam, p_min):
    value = counterexample_potentiality(p_hat, False, depth, total, lam, p_min)
    assert 0.0 <= value <= 1.0
