"""Tests for repro.core.abonn (the ABONN verifier, Alg. 1)."""

import numpy as np
import pytest

from repro.core.abonn import AbonnVerifier
from repro.core.config import AbonnConfig
from repro.specs.robustness import local_robustness_spec
from repro.utils import Budget
from repro.verifiers.milp import MilpVerifier
from repro.verifiers.result import VerificationStatus


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestAbonnVerdicts:
    def test_verifies_small_epsilon_at_root(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 1e-3)
        result = AbonnVerifier().verify(small_network, spec, Budget(max_nodes=100))
        assert result.status == VerificationStatus.VERIFIED
        assert result.nodes_explored == 1

    def test_falsifies_with_valid_counterexample(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(12)
        spec = local_robustness_spec(image.reshape(-1), 0.9, label, dataset.num_classes)
        result = AbonnVerifier().verify(network, spec, Budget(max_nodes=500))
        assert result.status == VerificationStatus.FALSIFIED
        assert spec.is_counterexample(network, result.counterexample)

    @pytest.mark.parametrize("epsilon", [0.05, 0.15, 0.3])
    def test_agrees_with_milp_oracle(self, epsilon, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(13)
        spec = local_robustness_spec(image.reshape(-1), epsilon, label,
                                     dataset.num_classes)
        oracle = MilpVerifier().verify(network, spec)
        result = AbonnVerifier().verify(network, spec, Budget(max_nodes=3000))
        if result.solved and oracle.solved:
            assert result.status == oracle.status

    def test_agrees_with_bab_baseline_verdicts(self, trained_network):
        from repro.bab import BaBBaselineVerifier

        network, dataset = trained_network
        for index in (14, 15, 16):
            image, label = dataset.sample(index)
            spec = local_robustness_spec(image.reshape(-1), 0.12, label,
                                         dataset.num_classes)
            abonn = AbonnVerifier().verify(network, spec, Budget(max_nodes=2000))
            baseline = BaBBaselineVerifier().verify(network, spec, Budget(max_nodes=2000))
            if abonn.solved and baseline.solved:
                assert abonn.status == baseline.status


class TestBudgetsAndStatistics:
    def test_respects_node_budget(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(17)
        spec = local_robustness_spec(image.reshape(-1), 0.2, label, dataset.num_classes)
        result = AbonnVerifier().verify(network, spec, Budget(max_nodes=15))
        assert result.nodes_explored <= 20

    def test_timeout_status_when_budget_exhausted(self, trained_network):
        network, dataset = trained_network
        statuses = []
        for index in range(18, 24):
            image, label = dataset.sample(index)
            spec = local_robustness_spec(image.reshape(-1), 0.25, label,
                                         dataset.num_classes)
            result = AbonnVerifier().verify(network, spec, Budget(max_nodes=3))
            statuses.append(result.status)
        assert all(status in (VerificationStatus.TIMEOUT, VerificationStatus.VERIFIED,
                              VerificationStatus.FALSIFIED) for status in statuses)

    def test_extras_record_hyperparameters(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        config = AbonnConfig(lam=0.7, exploration=0.3, heuristic="babsr")
        result = AbonnVerifier(config).verify(small_network, spec, Budget(max_nodes=100))
        assert result.extras["lambda"] == pytest.approx(0.7)
        assert result.extras["exploration"] == pytest.approx(0.3)
        assert result.extras["heuristic"] == "babsr"

    def test_tree_size_equals_appver_calls(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.2)
        result = AbonnVerifier().verify(small_network, spec, Budget(max_nodes=200))
        assert result.tree_size == result.nodes_explored


class TestHyperparameters:
    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("exploration", [0.0, 0.5])
    def test_verdicts_are_hyperparameter_independent(self, lam, exploration,
                                                     trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(25)
        spec = local_robustness_spec(image.reshape(-1), 0.1, label, dataset.num_classes)
        config = AbonnConfig(lam=lam, exploration=exploration)
        result = AbonnVerifier(config).verify(network, spec, Budget(max_nodes=2000))
        reference = AbonnVerifier().verify(network, spec, Budget(max_nodes=2000))
        if result.solved and reference.solved:
            assert result.status == reference.status

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            AbonnConfig(lam=1.5)

    def test_invalid_exploration_rejected(self):
        with pytest.raises(ValueError):
            AbonnConfig(exploration=-0.1)

    def test_without_lp_leaf_refinement_never_contradicts_oracle(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(26)
        spec = local_robustness_spec(image.reshape(-1), 0.3, label, dataset.num_classes)
        oracle = MilpVerifier().verify(network, spec)
        config = AbonnConfig(lp_leaf_refinement=False)
        result = AbonnVerifier(config).verify(network, spec, Budget(max_nodes=2000))
        if oracle.status == VerificationStatus.FALSIFIED:
            assert result.status != VerificationStatus.VERIFIED
        if oracle.status == VerificationStatus.VERIFIED:
            assert result.status != VerificationStatus.FALSIFIED

    @pytest.mark.parametrize("bound_method", ["deeppoly", "ibp"])
    def test_bound_methods_agree_on_verdict(self, bound_method, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(27)
        spec = local_robustness_spec(image.reshape(-1), 0.08, label, dataset.num_classes)
        config = AbonnConfig(bound_method=bound_method)
        result = AbonnVerifier(config).verify(network, spec, Budget(max_nodes=3000))
        reference = AbonnVerifier().verify(network, spec, Budget(max_nodes=3000))
        if result.solved and reference.solved:
            assert result.status == reference.status
