"""Cache-bundle persistence: save → load → replay round-trips.

A warm :class:`~repro.service.pool.CacheBundle` is a pile of verified facts
about one problem fingerprint; persisting it must preserve exactly those
facts and nothing else.  These tests pin the round-trip in service terms —
a fresh service warm-started from disk replays a job byte-identically and
entirely from hits — plus the file format's defences: fingerprint
validation, format versioning, corrupt/alien file rejection, fresh counters
and LRU order across the round-trip.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.abonn import AbonnVerifier
from repro.nn import dense_network
from repro.service import CacheBundle, ServiceConfig, VerificationService
from repro.service.pool import BUNDLE_FORMAT, BUNDLE_SUFFIX
from repro.utils import Budget

from conftest import make_robustness_problem

BUDGET_NODES = 60


def _problem(seed, shape, reference, epsilon):
    network = dense_network(shape, seed=seed)
    return network, make_robustness_problem(network, reference, epsilon)


#: Branches and resolves leaf LPs within the budget, so the warm replay can
#: demonstrate both bound-report and leaf-LP hits.
PROBLEM_LP = _problem(1, [6, 10, 8, 4], [0.5] * 6, 0.1)
PROBLEM_OTHER = _problem(3, [3, 8, 8, 3], [0.4, 0.6, 0.5], 0.12)

SOLO_LP = AbonnVerifier().verify(*PROBLEM_LP, Budget(max_nodes=BUDGET_NODES))


def _assert_identical(result, solo) -> None:
    assert result.status == solo.status
    assert result.nodes_explored == solo.nodes_explored
    assert result.tree_size == solo.tree_size
    if solo.bound is None:
        assert result.bound is None
    else:
        assert result.bound == solo.bound
    if solo.counterexample is None:
        assert result.counterexample is None
    else:
        assert result.counterexample.tobytes() == solo.counterexample.tobytes()


def _run_one(service, problem=PROBLEM_LP):
    job_id = service.submit(*problem, budget=Budget(max_nodes=BUDGET_NODES))
    service.run_until_complete()
    return service.result(job_id)


class TestRoundTrip:
    def test_fresh_service_replays_warm_from_disk(self, tmp_path):
        """save → load in a fresh service → replay: identical and all-hits."""
        first = VerificationService(ServiceConfig(pool_size=1))
        cold = _run_one(first)
        assert cold.ok
        paths = first.save_caches(tmp_path)
        assert paths == [tmp_path / f"{cold.fingerprint}{BUNDLE_SUFFIX}"]
        assert paths[0].exists()
        assert not list(tmp_path.glob("*.tmp"))  # atomic write left no debris

        second = VerificationService(ServiceConfig(pool_size=1))
        assert second.load_caches(tmp_path) == 1
        warm = _run_one(second)
        assert warm.ok
        assert warm.fingerprint == cold.fingerprint
        _assert_identical(warm.result, SOLO_LP)
        _assert_identical(warm.result, cold.result)
        # The warm path is genuine reuse: bound reports and leaf LPs come
        # from the restored bundle, and no LP is solved again.
        assert warm.cache_stats["bound_report_hits"] > 0
        assert warm.cache_stats["lp_hits"] > 0
        assert warm.cache_stats["lp_solves"] == 0

    def test_loaded_bundles_start_with_fresh_counters(self, tmp_path):
        service = VerificationService(ServiceConfig(pool_size=1))
        done = _run_one(service)
        service.save_caches(tmp_path)

        restored = VerificationService(ServiceConfig(pool_size=1))
        restored.load_caches(tmp_path)
        snapshot = restored.pool.bundle(done.fingerprint).stats_snapshot()
        assert all(value == 0 for value in snapshot.values()), snapshot

    def test_multi_fingerprint_pool_round_trips(self, tmp_path):
        service = VerificationService(ServiceConfig(pool_size=2))
        for problem in (PROBLEM_LP, PROBLEM_OTHER):
            service.submit(*problem, budget=Budget(max_nodes=BUDGET_NODES))
        cold = service.run_until_complete()
        paths = service.save_caches(tmp_path)
        assert len(paths) == 2
        assert paths == sorted(paths)  # stable, fingerprint-sorted listing

        restored = VerificationService(ServiceConfig(pool_size=2))
        assert restored.load_caches(tmp_path) == 2
        assert len(restored.pool) == 2
        for problem, before in zip((PROBLEM_LP, PROBLEM_OTHER), cold):
            warm = _run_one(restored, problem)
            assert warm.ok
            _assert_identical(warm.result, before.result)
            assert warm.cache_stats["lp_solves"] == 0

    def test_load_preserves_lru_order(self, tmp_path):
        """Importing into a smaller cache keeps the most recent entries."""
        bundle = CacheBundle("f" * 64)
        for index in range(10):
            bundle.lp_cache.put(("key", index), index)
        path = bundle.save(tmp_path / f"{'f' * 64}{BUNDLE_SUFFIX}")
        shrunk = CacheBundle.load(path, lp_cache_size=4)
        kept = [index for index in range(10)
                if shrunk.lp_cache.get(("key", index)) is not None]
        assert kept == [6, 7, 8, 9]
        assert shrunk.lp_cache.stats.evictions == 6

    def test_threaded_service_shares_the_persistence_path(self, tmp_path):
        """save/load works identically when the pool is fed by worker threads."""
        with VerificationService(ServiceConfig(pool_size=2,
                                               transport="threaded")) as svc:
            svc.submit(*PROBLEM_LP, budget=Budget(max_nodes=BUDGET_NODES))
            svc.run_until_complete()
            paths = svc.save_caches(tmp_path)
        assert len(paths) == 1

        restored = VerificationService(ServiceConfig(pool_size=1))
        restored.load_caches(tmp_path)
        warm = _run_one(restored)
        _assert_identical(warm.result, SOLO_LP)
        assert warm.cache_stats["lp_solves"] == 0


class TestFileValidation:
    def _saved_bundle(self, tmp_path):
        service = VerificationService(ServiceConfig(pool_size=1))
        done = _run_one(service)
        return service.save_caches(tmp_path)[0], done.fingerprint

    def test_wrong_fingerprint_is_rejected(self, tmp_path):
        path, fingerprint = self._saved_bundle(tmp_path)
        with pytest.raises(ValueError, match="belongs to fingerprint"):
            CacheBundle.load(path, expected_fingerprint="0" * 64)
        # The matching fingerprint loads fine.
        loaded = CacheBundle.load(path, expected_fingerprint=fingerprint)
        assert loaded.fingerprint == fingerprint

    def test_corrupt_file_is_rejected(self, tmp_path):
        path = tmp_path / f"{'a' * 64}{BUNDLE_SUFFIX}"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(ValueError, match="not a cache-bundle"):
            CacheBundle.load(path)

    def test_alien_pickle_is_rejected(self, tmp_path):
        path = tmp_path / f"{'b' * 64}{BUNDLE_SUFFIX}"
        with open(path, "wb") as handle:
            pickle.dump({"surprise": True}, handle)
        with pytest.raises(ValueError, match="not a cache-bundle"):
            CacheBundle.load(path)

    def test_future_format_is_rejected(self, tmp_path):
        path, fingerprint = self._saved_bundle(tmp_path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = BUNDLE_FORMAT + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(ValueError, match="unsupported cache-bundle format"):
            CacheBundle.load(path)

    def test_renamed_bundle_file_is_rejected_by_the_pool(self, tmp_path):
        path, _ = self._saved_bundle(tmp_path)
        path.rename(tmp_path / f"{'c' * 64}{BUNDLE_SUFFIX}")
        fresh = VerificationService(ServiceConfig(pool_size=1))
        with pytest.raises(ValueError, match="does not match its fingerprint"):
            fresh.load_caches(tmp_path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            CacheBundle.load(tmp_path / "absent.cachebundle")

    def test_loading_an_empty_directory_is_a_noop(self, tmp_path):
        service = VerificationService()
        assert service.load_caches(tmp_path) == 0
        assert len(service.pool) == 0

    def test_stale_tmp_files_are_ignored_and_cleaned(self, tmp_path):
        """Debris from a save that crashed mid-write never breaks a load.

        ``CacheBundle.save`` writes to ``<name>.tmp`` and atomically
        renames; a crash between the two leaves a stale (possibly
        truncated) tmp file behind.  ``load_bundles`` must skip it as a
        bundle, delete it, and still load the good bundles next to it.
        """
        path, fingerprint = self._saved_bundle(tmp_path)
        truncated = tmp_path / f"{'d' * 64}{BUNDLE_SUFFIX}.tmp"
        truncated.write_bytes(path.read_bytes()[:17])  # mid-pickle crash
        fresh = VerificationService(ServiceConfig(pool_size=1))
        assert fresh.load_caches(tmp_path) == 1  # tmp not counted
        assert fresh.pool.bundle(fingerprint).bound_cache.export_entries()
        assert not truncated.exists()  # debris cleaned up
        assert path.exists()  # the real bundle untouched
