"""Tests for repro.verifiers.appver (the AppVer oracle of Alg. 1)."""

import numpy as np
import pytest

from repro.bounds.splits import ACTIVE, ReluSplit, SplitAssignment
from repro.specs.robustness import local_robustness_spec
from repro.verifiers.appver import ApproximateVerifier


def problem(network, reference, epsilon):
    reference = np.asarray(reference, dtype=float)
    label = int(network.predict(reference.reshape(1, -1))[0])
    return local_robustness_spec(reference, epsilon, label, network.output_dim)


class TestApproximateVerifier:
    def test_small_epsilon_verifies(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 1e-4)
        outcome = ApproximateVerifier(small_network, spec).evaluate()
        assert outcome.verified
        assert not outcome.falsified
        assert not outcome.needs_split

    def test_huge_epsilon_falsifies_or_needs_split(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(2)
        spec = local_robustness_spec(image.reshape(-1), 0.9, label, dataset.num_classes)
        outcome = ApproximateVerifier(network, spec).evaluate()
        assert not outcome.verified
        if outcome.falsified:
            assert spec.is_counterexample(network, outcome.candidate)

    def test_p_hat_is_sound_lower_bound(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.12)
        outcome = ApproximateVerifier(small_network, spec).evaluate()
        for sample in spec.input_box.sample(0, count=200):
            assert spec.margin(small_network, sample) >= outcome.p_hat - 1e-7

    def test_counts_calls(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.1)
        verifier = ApproximateVerifier(small_network, spec)
        verifier.evaluate()
        verifier.evaluate(SplitAssignment.from_splits([ReluSplit(0, 0, ACTIVE)]))
        assert verifier.num_calls == 2
        verifier.reset_counter()
        assert verifier.num_calls == 0

    def test_methods_are_ordered_by_tightness(self, small_network):
        spec = problem(small_network, [0.4, 0.5, 0.6, 0.3], 0.15)
        verifier = ApproximateVerifier(small_network, spec)
        ibp = verifier.evaluate(method="ibp")
        deeppoly = verifier.evaluate(method="deeppoly")
        alpha = verifier.evaluate(method="alpha-crown")
        assert ibp.p_hat <= deeppoly.p_hat + 1e-9
        assert deeppoly.p_hat <= alpha.p_hat + 1e-9

    def test_num_relu_neurons(self, small_network, small_spec):
        verifier = ApproximateVerifier(small_network, small_spec)
        assert verifier.num_relu_neurons == small_network.num_relu_neurons

    def test_unknown_method_rejected(self, small_network, small_spec):
        with pytest.raises(ValueError):
            ApproximateVerifier(small_network, small_spec, method="zonotope")

    def test_dimension_mismatch_rejected(self, small_network):
        spec = local_robustness_spec(np.zeros(5), 0.1, 0, 3)
        with pytest.raises(ValueError):
            ApproximateVerifier(small_network, spec)

    def test_candidate_validity_flag_matches_spec(self, trained_network):
        network, dataset = trained_network
        image, label = dataset.sample(4)
        spec = local_robustness_spec(image.reshape(-1), 0.6, label, dataset.num_classes)
        outcome = ApproximateVerifier(network, spec).evaluate()
        if outcome.p_hat < 0:
            assert outcome.is_valid_counterexample == spec.is_counterexample(
                network, outcome.candidate)
