"""Tests for repro.nn.network: Sequential container and affine/ReLU lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.network import LoweredNetwork, Network, dense_network


class TestNetworkBasics:
    def test_forward_shape(self, small_network):
        out = small_network.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_callable(self, small_network):
        x = np.zeros((2, 4))
        np.testing.assert_allclose(small_network(x), small_network.forward(x))

    def test_predict_returns_labels(self, small_network):
        labels = small_network.predict(np.random.default_rng(0).random((6, 4)))
        assert labels.shape == (6,)
        assert set(labels) <= {0, 1, 2}

    def test_input_and_output_dims(self, conv_network):
        assert conv_network.input_dim == 36
        assert conv_network.output_dim == 3

    def test_layer_shapes(self, conv_network):
        shapes = conv_network.layer_shapes()
        assert shapes[0] == (1, 6, 6)
        assert shapes[-1] == (3,)

    def test_summary_mentions_layers(self, small_network):
        text = small_network.summary()
        assert "Dense" in text and "ReLU" in text

    def test_num_parameters_positive(self, small_network):
        assert small_network.num_parameters() > 0

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], (2,))

    def test_backward_shape(self, small_network):
        x = np.random.default_rng(0).random((3, 4))
        out = small_network.forward(x)
        grad = small_network.backward(np.ones_like(out))
        assert grad.shape == (3, 4)


class TestDenseNetworkBuilder:
    def test_structure(self):
        network = dense_network([3, 5, 4, 2], seed=0)
        kinds = [type(layer).__name__ for layer in network.layers]
        assert kinds == ["Dense", "ReLU", "Dense", "ReLU", "Dense"]

    def test_too_few_sizes_rejected(self):
        with pytest.raises(ValueError):
            dense_network([4])

    def test_deterministic_for_seed(self):
        a = dense_network([3, 4, 2], seed=5)
        b = dense_network([3, 4, 2], seed=5)
        x = np.random.default_rng(0).random((2, 3))
        np.testing.assert_allclose(a.forward(x), b.forward(x))


class TestLowering:
    def test_lowered_matches_forward_dense(self, small_network):
        lowered = small_network.lowered()
        x = np.random.default_rng(1).random((10, 4))
        np.testing.assert_allclose(lowered.forward(x), small_network.forward(x), atol=1e-9)

    def test_lowered_matches_forward_conv(self, conv_network):
        lowered = conv_network.lowered()
        x = np.random.default_rng(2).random((4, 1, 6, 6))
        np.testing.assert_allclose(lowered.forward(x.reshape(4, -1)),
                                   conv_network.forward(x), atol=1e-9)

    def test_lowered_structure(self, conv_network):
        lowered = conv_network.lowered()
        # conv -> relu -> (flatten+dense merged) -> relu -> dense
        assert lowered.num_affine_layers == 3
        assert lowered.num_relu_layers == 2
        assert lowered.relu_layer_sizes() == (2 * 6 * 6, 8)

    def test_num_relu_neurons(self, small_network):
        assert small_network.num_relu_neurons == 8 + 6

    def test_pre_activations(self, small_network):
        lowered = small_network.lowered()
        x = np.random.default_rng(3).random(4)
        pre = lowered.pre_activations(x)
        assert [p.shape[0] for p in pre] == [8, 6]
        # Reconstruct the output from the pre-activations by hand.
        hidden = np.maximum(pre[-1], 0.0)
        manual = lowered.weights[-1] @ hidden + lowered.biases[-1]
        np.testing.assert_allclose(manual, lowered.forward(x)[0], atol=1e-9)

    def test_neuron_index_roundtrip(self, small_network):
        lowered = small_network.lowered()
        for flat in range(lowered.num_relu_neurons):
            layer, unit = lowered.neuron_address(flat)
            assert lowered.neuron_index(layer, unit) == flat

    def test_neuron_index_out_of_range(self, small_network):
        lowered = small_network.lowered()
        with pytest.raises(ValueError):
            lowered.neuron_address(lowered.num_relu_neurons)

    def test_relu_first_rejected(self):
        network = Network([ReLU(), Dense(3, 2, seed=0)], (3,))
        with pytest.raises(ValueError):
            network.lowered()

    def test_trailing_relu_rejected(self):
        network = Network([Dense(3, 2, seed=0), ReLU()], (3,))
        with pytest.raises(ValueError):
            network.lowered()

    def test_lowered_is_cached_and_invalidatable(self, small_network):
        first = small_network.lowered()
        assert small_network.lowered() is first
        small_network.invalidate_lowered()
        assert small_network.lowered() is not first

    def test_inconsistent_lowered_network_rejected(self):
        with pytest.raises(ValueError):
            LoweredNetwork((np.zeros((2, 3)), np.zeros((4, 5))),
                           (np.zeros(2), np.zeros(4)), (3,))


class TestPersistence:
    def test_save_load_roundtrip_dense(self, tmp_path, small_network):
        path = tmp_path / "model.npz"
        small_network.save(path)
        restored = Network.load(path)
        x = np.random.default_rng(4).random((3, 4))
        np.testing.assert_allclose(restored.forward(x), small_network.forward(x))
        assert restored.name == small_network.name

    def test_save_load_roundtrip_conv(self, tmp_path, conv_network):
        path = tmp_path / "conv.npz"
        conv_network.save(path)
        restored = Network.load(path)
        x = np.random.default_rng(5).random((2, 1, 6, 6))
        np.testing.assert_allclose(restored.forward(x), conv_network.forward(x))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000),
       width=st.integers(min_value=1, max_value=8),
       depth=st.integers(min_value=1, max_value=3))
def test_lowering_preserves_semantics_property(seed, width, depth):
    """The lowered network computes exactly the same function."""
    sizes = [3] + [width] * depth + [2]
    network = dense_network(sizes, seed=seed)
    lowered = network.lowered()
    x = np.random.default_rng(seed).normal(size=(5, 3))
    np.testing.assert_allclose(lowered.forward(x), network.forward(x), atol=1e-8)
