#!/usr/bin/env python3
"""Gate benchmark summaries against a committed baseline.

Compares the stable top-level ``summary`` block of a fresh
``benchmarks/bench_batching.py`` run against a committed baseline JSON and
fails on regressions beyond a tolerance (default 25%).

Only *machine-portable* metrics are compared by default:

* speedup ratios (``*speedup*`` keys) and cache hit rates / realised batch
  sizes — higher is better, a run fails when it drops below
  ``baseline * (1 - tolerance)``;
* LP solve counts (``lp_total_solves``) — lower is better, a run fails when
  it grows beyond ``baseline * (1 + tolerance)``;
* robustness counters (``total_job_retries``, ``process_worker_crashes``,
  ``process_transport_downgrades``) — lower is better *and* a zero
  baseline gates: the clean benchmark workload injects no faults, so any
  retry, worker crash or transport downgrade appearing in a fresh run is a
  real stability regression, not noise;
* boolean invariants (``*identical*`` / ``*_equal`` keys) — must still
  hold whenever the baseline holds them.

Absolute per-child times (``median_per_child_us``) are informational: they
are not comparable across machines and are skipped unless
``--compare-times`` is given.  Keys present in only one of the two files
are skipped (sections are flag-dependent), so the checker works for both
smoke and full runs as long as baseline and current were produced with the
same flags.

Usage::

    python tools/check_bench_regression.py CURRENT BASELINE [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Higher-is-better numeric summary metrics stable enough to gate.  The
#: micro-benchmark engine/batched speedups are deliberately absent: they
#: swing by >30% between runs of the tiny smoke workload, so gating them at
#: any useful tolerance would flake — they stay informational in the JSON.
HIGHER_BETTER_KEYS = (
    "min_speedup_incremental",
    "lp_min_micro_hit_rate",
    "min_mean_realised_batch_at_frontier_8",
    "min_speedup_cascade_steady",
    "cascade_max_pre_exact_fraction",
    "service_min_throughput_speedup",
    "service_min_lp_hit_rate",
    "service_min_bound_hit_rate",
    "threaded_speedup_over_cooperative",
    "process_speedup_over_cooperative",
)
#: Per-key tolerance overrides.  The smoke-workload per-child medians are
#: too short for tight gating on shared CI runners, so the incremental
#: speedup gets extra headroom: with the committed ~1.5x baseline the floor
#: sits just above 1.0 — CI still fails if the incremental path stops
#: helping at all, without flaking on scheduler noise.
TOLERANCE_OVERRIDES = {"min_speedup_incremental": 0.30,
                       "min_speedup_cascade_steady": 0.30,
                       # End-to-end wall-clock ratios on the tiny smoke
                       # workload swing with scheduler noise; wider headroom
                       # keeps the gates meaningful without flaking.
                       "service_min_throughput_speedup": 0.30,
                       "service_max_p95_latency_ratio": 0.50,
                       # Parallel speedup depends on the host's core count
                       # (a 1-core baseline machine reports ~1.0x); this key
                       # only backstops "threading suddenly became a big
                       # slowdown" — the real ≥1.3x floor lives in CI,
                       # guarded by cpu_count.
                       "threaded_speedup_over_cooperative": 0.50,
                       # Process-transport throughput additionally pays a
                       # per-slice pipe round-trip, so on few-core hosts the
                       # ratio sits below 1.0 by design; the gate only
                       # catches the IPC path becoming drastically slower.
                       "process_speedup_over_cooperative": 0.50}
#: Lower-is-better numeric summary metrics.
LOWER_BETTER_KEYS = ("lp_total_solves", "service_max_p95_latency_ratio",
                     "total_job_retries", "process_worker_crashes",
                     "process_transport_downgrades")
#: Lower-is-better keys where a zero baseline still gates (value must stay
#: zero).  The benchmark workload injects no faults, so these counters are
#: exact invariants rather than noisy measurements.
ZERO_GATED_KEYS = ("total_job_retries", "process_worker_crashes",
                   "process_transport_downgrades")
#: Boolean invariants that must not flip to False.
BOOLEAN_MARKERS = ("identical", "_equal", "verdicts_match")
#: Informational keys skipped without --compare-times.
TIME_KEYS = ("median_per_child_us",)


def _classify(key: str):
    if any(marker in key for marker in BOOLEAN_MARKERS):
        return "boolean"
    if key in LOWER_BETTER_KEYS:
        return "lower"
    if key in HIGHER_BETTER_KEYS:
        return "higher"
    return None


def compare_summaries(current: dict, baseline: dict, tolerance: float,
                      compare_times: bool = False):
    """Yield ``(key, message)`` for every regression found."""
    for key, base_value in baseline.items():
        if key not in current:
            continue
        value = current[key]
        if key in TIME_KEYS:
            if not compare_times:
                continue
            for family, base_times in base_value.items():
                times = value.get(family)
                if times is None:
                    continue
                limit = base_times["incremental"] * (1.0 + tolerance)
                if times["incremental"] > limit:
                    yield (key, f"{family} incremental per-child time "
                                f"{times['incremental']:.1f}us exceeds "
                                f"baseline {base_times['incremental']:.1f}us "
                                f"by more than {tolerance:.0%}")
            continue
        kind = _classify(key)
        if kind == "boolean":
            if bool(base_value) and not bool(value):
                yield (key, f"invariant {key} regressed: baseline "
                            f"{base_value} -> current {value}")
        elif kind == "higher" and isinstance(base_value, (int, float)):
            key_tolerance = TOLERANCE_OVERRIDES.get(key, tolerance)
            floor = base_value * (1.0 - key_tolerance)
            if value < floor:
                yield (key, f"{key} regressed: {value:.4g} < "
                            f"{floor:.4g} (baseline {base_value:.4g} "
                            f"- {key_tolerance:.0%})")
        elif kind == "lower" and isinstance(base_value, (int, float)):
            if base_value == 0:
                if key in ZERO_GATED_KEYS and value > 0:
                    yield (key, f"{key} regressed: {value:.4g} > 0 "
                                f"(baseline 0 — the clean benchmark "
                                f"workload must stay fault-free)")
                continue  # other zero baselines (e.g. no LP reached) gate nothing
            key_tolerance = TOLERANCE_OVERRIDES.get(key, tolerance)
            ceiling = base_value * (1.0 + key_tolerance)
            if value > ceiling:
                yield (key, f"{key} regressed: {value:.4g} > "
                            f"{ceiling:.4g} (baseline {base_value:.4g} "
                            f"+ {key_tolerance:.0%})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path,
                        help="JSON written by the fresh benchmark run")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    parser.add_argument("--compare-times", action="store_true",
                        help="also gate absolute per-child times (only "
                             "meaningful on the machine that produced the "
                             "baseline)")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    current_summary = current.get("summary", {})
    baseline_summary = baseline.get("summary", {})
    if not baseline_summary:
        print("baseline has no summary block", file=sys.stderr)
        return 2

    regressions = list(compare_summaries(current_summary, baseline_summary,
                                         args.tolerance, args.compare_times))
    checked = [key for key in baseline_summary
               if key in current_summary and
               (_classify(key) is not None
                or (key in TIME_KEYS and args.compare_times))]
    for key, message in regressions:
        print(f"REGRESSION: {message}", file=sys.stderr)
    print(f"checked {len(checked)} summary metrics against "
          f"{args.baseline} (tolerance {args.tolerance:.0%}): "
          f"{len(regressions)} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
