"""Markdown link checker for the repository docs (stdlib only, offline).

Validates every inline link ``[text](target)`` in the given Markdown files
(directories are scanned recursively for ``*.md``):

* relative file targets must exist on disk, resolved against the linking
  file's directory;
* anchor fragments (``#section``, alone or after a ``.md`` target) must
  match an anchor in the target file, using GitHub's slugification rules
  (lowercase, spaces to hyphens, punctuation stripped).  Anchors come from
  ATX headings (``## Title``), setext headings (underlined with ``===`` or
  ``---``), and explicit HTML anchors (``<a name="...">``, ``id="..."``);
  duplicated heading titles get GitHub's ``-1``, ``-2``, … suffixes, so
  ``#title-1`` resolves iff the title really occurs twice;
* external targets (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must stay offline-deterministic.

Exit status is non-zero when any link is broken, printing one line per
problem, so the tool doubles as a CI job and a tier-1 test helper
(``tests/test_docs_links.py``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline Markdown links; deliberately simple — no nested parentheses.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
#: Setext heading underlines (the heading text is the preceding line).
SETEXT_PATTERN = re.compile(r"^\s{0,3}(=+|-+)\s*$")
#: Explicit HTML anchors: <a name="..."> / <a id="..."> / id="..." on any tag.
HTML_ANCHOR_PATTERN = re.compile(r"<[^>]*\b(?:name|id)\s*=\s*[\"']([^\"']+)[\"']")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (approximation, ASCII-safe)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(targets: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def heading_slugs(path: Path) -> set:
    """Every anchor a fragment may target in ``path``.

    Collects ATX and setext headings plus explicit HTML anchors, and
    numbers repeated heading slugs the way GitHub does: the first
    occurrence keeps the plain slug, later ones get ``-1``, ``-2``, …
    """
    slugs = set()
    counts: dict = {}

    def add_heading(text: str) -> None:
        slug = github_slug(text)
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if not seen else f"{slug}-{seen}")

    in_code_fence = False
    previous = ""
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            previous = ""
            continue
        if in_code_fence:
            continue
        for anchor in HTML_ANCHOR_PATTERN.findall(line):
            slugs.add(anchor)
        match = HEADING_PATTERN.match(line)
        if match:
            add_heading(match.group(1))
            previous = ""
            continue
        if SETEXT_PATTERN.match(line) and previous.strip():
            add_heading(previous)
            previous = ""
            continue
        previous = line
    return slugs


def check_file(path: Path) -> List[Tuple[Path, str, str]]:
    """Return ``(file, target, reason)`` for every broken link in ``path``."""
    problems: List[Tuple[Path, str, str]] = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_PATTERN.findall(text):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append((path, target, "file does not exist"))
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                problems.append((path, target, "anchor into a non-Markdown target"))
            elif github_slug(fragment) not in heading_slugs(resolved):
                problems.append((path, target, "anchor has no matching heading"))
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_markdown_links.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files = markdown_files(argv)
    missing = [str(path) for path in files if not path.exists()]
    for path in missing:
        print(f"MISSING INPUT: {path}")
    problems = []
    for path in files:
        if path.exists():
            problems.extend(check_file(path))
    for path, target, reason in problems:
        print(f"BROKEN LINK: {path}: ({target}) — {reason}")
    if problems or missing:
        return 1
    print(f"ok: {len(files)} file(s), no broken links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
