"""Docstring checker for public callables (stdlib only, offline).

Walks the given Python files (directories are scanned recursively for
``*.py``) with :mod:`ast` — no imports of the checked code, so the tool
runs in the dependency-free docs CI job — and reports every *public*
callable without a docstring:

* module-level functions and classes whose name has no leading underscore;
* public methods of public classes (dunder methods are exempt — this
  repository documents construction in the class docstring — as are
  ``@property`` setters and ``@overload`` stubs);
* the module itself.

The repository gates its engine and verifier surfaces on this check
(``tools/check_docstrings.py src/repro/engine src/repro/verifiers``): the
:class:`~repro.engine.driver.WorkSource` hooks and the batched verifier
entry points are contracts three drivers rely on, so an undocumented public
callable there is treated as a CI failure, mirroring how
``check_markdown_links.py`` gates the prose docs.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

def python_files(targets: Iterable[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``*.py`` paths."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


#: Decorators whose targets need no docstring: typing stubs and property
#: companions (documented on the getter).
EXEMPT_DECORATORS = {"overload", "setter", "deleter"}


def _is_public_name(name: str) -> bool:
    return not name.startswith("_")


def _decorator_name(decorator: ast.AST) -> str:
    """The terminal identifier of a decorator (``prop.setter`` → ``setter``)."""
    target = decorator
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def _needs_docstring(node: ast.AST, owner_public: bool) -> bool:
    name = getattr(node, "name", "")
    if name.startswith("__") and name.endswith("__"):
        return False
    for decorator in getattr(node, "decorator_list", []):
        if _decorator_name(decorator) in EXEMPT_DECORATORS:
            return False
    return owner_public and _is_public_name(name)


def undocumented(path: Path) -> List[Tuple[Path, int, str]]:
    """Return ``(file, line, qualified name)`` for every missing docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    problems: List[Tuple[Path, int, str]] = []
    module_public = _is_public_name(path.stem) or path.stem == "__init__"
    if module_public and not ast.get_docstring(tree):
        problems.append((path, 1, "<module>"))

    def visit(body, prefix: str, owner_public: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _needs_docstring(node, owner_public) and not ast.get_docstring(node):
                    problems.append((path, node.lineno, f"{prefix}{node.name}"))
            elif isinstance(node, ast.ClassDef):
                class_public = owner_public and _is_public_name(node.name)
                if class_public and not ast.get_docstring(node):
                    problems.append((path, node.lineno, f"{prefix}{node.name}"))
                visit(node.body, f"{prefix}{node.name}.", class_public)

    visit(tree.body, "", module_public)
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_docstrings.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files = python_files(argv)
    missing = [str(path) for path in files if not path.exists()]
    for path in missing:
        print(f"MISSING INPUT: {path}")
    problems: List[Tuple[Path, int, str]] = []
    for path in files:
        if path.exists():
            problems.extend(undocumented(path))
    for path, line, name in problems:
        print(f"UNDOCUMENTED: {path}:{line}: {name}")
    if problems or missing:
        return 1
    print(f"ok: {len(files)} file(s), all public callables documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
