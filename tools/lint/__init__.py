"""Project-invariant linter (stdlib only, offline, never imports src).

A small rule framework over :mod:`ast` that machine-checks the invariants
this repository's PR history keeps re-litigating in review: lock
discipline in the threaded service, seeded-RNG-only randomness, wall-clock
confinement, marked isolation boundaries, pickle-safe transport payloads
and fully annotated public surfaces.  Run it as::

    python -m tools.lint src tools tests          # the six AST rules
    python -m tools.lint --all src tools tests    # + docstring/link gates

Findings print as ``file:line rule-id message`` and any unsuppressed
finding makes the exit status nonzero.  Inline suppressions
(``# lint: disable=<rule-id> - <justification>``) require a justification;
see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from .core import (  # noqa: F401 (public re-exports)
    FRAMEWORK_RULE_IDS,
    Finding,
    LintContext,
    LintReport,
    REGISTRY,
    Rule,
    lint_file,
    parse_suppressions,
    python_files,
    register,
    run_lint,
)
