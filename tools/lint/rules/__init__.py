"""The shipped lint rules.

Importing this package populates :data:`tools.lint.core.REGISTRY` — each
rule module registers its rule class via the :func:`~tools.lint.core.register`
decorator at import time.  See ``docs/STATIC_ANALYSIS.md`` for the
invariant behind each rule.
"""

from __future__ import annotations

from . import api_annotations  # noqa: F401 (registers api-annotations)
from . import exception_discipline  # noqa: F401 (registers exception-discipline)
from . import lock_discipline  # noqa: F401 (registers lock-discipline)
from . import payload_pickle_safety  # noqa: F401 (registers payload-pickle-safety)
from . import rng_discipline  # noqa: F401 (registers rng-discipline)
from . import wallclock_discipline  # noqa: F401 (registers wallclock-discipline)
