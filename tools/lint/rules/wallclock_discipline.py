"""wallclock-discipline: the library reads the clock in one place only.

Deterministic trajectories — the property the whole transport-conformance
suite pins (a job's verdict/charges/counterexample are byte-identical to a
solo run) — and replayable benchmarks both break the moment verifier code
reads the wall clock directly: elapsed time would flow into decisions that
must be pure functions of the problem and the budget.  All timing therefore
goes through ``repro/utils/timing.py`` (``Stopwatch``, ``PhaseTimings``,
``Budget`` — the budget's auto-starting clock is the *sanctioned* way to
bound a run by seconds).

The rule bans, in ``src/`` outside ``utils/timing.py``:

* ``time.time()``, ``time.perf_counter()``, ``time.process_time()`` (and
  their ``_ns`` variants) — measure through ``Stopwatch``/``PhaseTimings``;
* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()`` — wall-clock
  timestamps have no place in verification logic.

``time.monotonic()`` stays allowed: the service scheduler uses it for
*deadlines and backoff* (absolute scheduling instants comparable across
processes), which is scheduling policy, not verification state — and the
conformance suite pins that policy's observable behaviour.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import ImportAliases, attribute_chain
from ..core import Finding, LintContext, Rule, register

#: Banned functions of the :mod:`time` module.
BANNED_TIME = {"time", "time_ns", "perf_counter", "perf_counter_ns",
               "process_time", "process_time_ns", "clock"}

#: Banned wall-clock constructors of :mod:`datetime` classes.
BANNED_DATETIME = {"now", "utcnow", "today"}


@register
class WallclockDisciplineRule(Rule):
    """Raw clock reads are confined to ``repro/utils/timing.py``."""

    id = "wallclock-discipline"
    description = ("no raw time.time()/perf_counter()/datetime.now() in "
                   "src/ outside utils/timing.py; use Stopwatch/Budget")
    scope = ("src/",)
    exempt = ("src/repro/utils/timing.py",)

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Flag direct wall-clock reads."""
        aliases = ImportAliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module == "time":
                banned = sorted(alias.name for alias in node.names
                                if alias.name in BANNED_TIME)
                if banned:
                    yield Finding(
                        context.relpath, node.lineno, self.id,
                        f"importing {', '.join(banned)} from time; measure "
                        f"through repro.utils.timing instead")
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                resolved = aliases.resolve_chain(chain)
                if resolved[0] == "time" and len(resolved) == 2 \
                        and resolved[1] in BANNED_TIME:
                    yield Finding(
                        context.relpath, node.lineno, self.id,
                        f"time.{resolved[1]}() is a raw wall-clock read; "
                        f"use Stopwatch/PhaseTimings/Budget "
                        f"(repro.utils.timing)")
                elif resolved[0] == "datetime" \
                        and resolved[-1] in BANNED_DATETIME:
                    yield Finding(
                        context.relpath, node.lineno, self.id,
                        f"datetime {'.'.join(resolved[1:])}() reads the "
                        f"wall clock; verification logic must not "
                        f"timestamp itself")
