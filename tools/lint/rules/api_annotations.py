"""api-annotations: public surfaces are fully type-annotated.

The engine's :class:`WorkSource` hooks, the service API and the verifier
entry points are contracts that three drivers, two transports and the
bench harness program against.  Docstrings on these surfaces are already
CI-gated (``tools/check_docstrings.py``); this rule closes the other half
of the contract: every *public* callable on the gated surfaces annotates
every parameter and its return type, so a reader (or a type checker) never
has to reverse-engineer what ``item`` or ``payload`` may be from call
sites.

Publicness mirrors the docstring gate exactly: module-level functions and
public methods of public classes, with dunders and ``@overload``/property
``setter``/``deleter`` companions exempt, and ``self``/``cls`` naturally
unannotated.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..astutil import decorator_name, is_dunder, is_public_name
from ..core import Finding, LintContext, Rule, register

#: Decorators whose targets the docstring gate (and therefore this rule)
#: exempts: typing stubs and property companions.
EXEMPT_DECORATORS = {"overload", "setter", "deleter"}


def _missing_annotations(node: ast.AST, is_method: bool) -> List[str]:
    """Parameter names (plus ``"return"``) lacking annotations."""
    args = node.args
    missing: List[str] = []
    decorators = {decorator_name(d) for d in node.decorator_list}
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and "staticmethod" not in decorators and positional:
        positional = positional[1:]  # self / cls
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in (args.vararg, args.kwarg):
        if arg is not None and arg.annotation is None:
            missing.append(f"*{arg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing


@register
class ApiAnnotationsRule(Rule):
    """Public callables on gated surfaces annotate params and return."""

    id = "api-annotations"
    description = ("public callables on engine/service/verifier surfaces "
                   "must annotate every parameter and the return type")
    scope = ("src/repro/engine/", "src/repro/service/",
             "src/repro/verifiers/", "src/repro/core/abonn.py",
             "src/repro/bab/baseline.py", "src/repro/baselines/")

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Check every public callable on the gated surface."""
        module_public = is_public_name(context.path.stem) \
            or context.path.stem == "__init__"

        def visit(body: Iterable[ast.AST], prefix: str,
                  owner_public: bool, in_class: bool) -> Iterable[Finding]:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not owner_public or not is_public_name(node.name) \
                            or is_dunder(node.name):
                        continue
                    if any(decorator_name(d) in EXEMPT_DECORATORS
                           for d in node.decorator_list):
                        continue
                    missing = _missing_annotations(node, in_class)
                    if missing:
                        yield Finding(
                            context.relpath, node.lineno, self.id,
                            f"public callable {prefix}{node.name} is "
                            f"missing annotation(s): "
                            f"{', '.join(missing)}")
                elif isinstance(node, ast.ClassDef):
                    class_public = owner_public \
                        and is_public_name(node.name)
                    yield from visit(node.body, f"{prefix}{node.name}.",
                                     class_public, True)

        yield from visit(context.tree.body, "", module_public, False)
