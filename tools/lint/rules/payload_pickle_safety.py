"""payload-pickle-safety: transport payloads stay composed of picklables.

Jobs, results and cache bundles cross a ``multiprocessing`` pipe (PRs 8–9)
and are persisted as on-disk cache payloads (PR 7).  A field that sneaks a
closure, a lock or an open handle into one of these dataclasses does not
fail at the definition site — it fails *later*, in a worker process, as an
opaque ``PicklingError`` (or worse, pickles by reference and silently
diverges between processes).  PR 9's ``UnpicklableJob`` fallback exists
precisely because one such field (``JobRequest.verifier_factory``) is
legitimately a callable; everything else must stay structural.

The rule checks the annotated fields of a named family of payload
dataclasses (:data:`PAYLOAD_CLASSES` — everything that transits the
process-transport pipe or a cache bundle) against an allowlist of
annotation atoms: primitives, plain containers, ``numpy.ndarray``,
``typing`` container forms, and the payload family itself.  Anything else
(``Callable``, ``Any``, ``IO``, a lock type, …) is flagged where the field
is *declared*, not where the pickle eventually explodes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..astutil import attribute_chain
from ..core import Finding, LintContext, Rule, register

#: The dataclasses that transit the process-transport pipe or an on-disk
#: cache bundle.  A class listed here has its annotated fields checked.
PAYLOAD_CLASSES = {
    # service/jobs.py — the pipe protocol's request/reply payloads.
    "JobRequest", "JobResult", "JobError",
    # verifiers/result.py — the verdict shipped back from workers.
    "VerificationResult",
    # bounds/{cache,report,linear_form}.py — cache-bundle payload entries.
    "SubstitutionEntry", "BoundReport", "LinearForm", "AffineForms",
    "ScalarBounds",
    # nn/network.py, specs/properties.py — the problem statement in a job.
    "LoweredNetwork", "InputBox", "LinearOutputSpec", "Specification",
    # utils/timing.py, verifiers/milp.py — budget state and LP row results.
    "Budget", "Stopwatch", "RowOptimum",
}

#: Annotation atoms that are pickle-safe by construction.  ``object`` is
#: the repository's documented "picklable extras" escape hatch
#: (``metadata: Dict[str, object]``): it promises nothing about *shape*
#: but the convention (docs/SERVICE.md) is that only plain data goes in.
ALLOWED_ATOMS = {
    # primitives and plain containers
    "int", "float", "str", "bool", "bytes", "complex",
    "dict", "list", "tuple", "set", "frozenset",
    "None", "NoneType", "object",
    # numpy arrays (ship as values through the pipe)
    "np", "numpy", "ndarray", "dtype",
    # typing container forms
    "typing", "Optional", "Union", "Dict", "List", "Tuple", "Set",
    "FrozenSet", "Mapping", "Sequence", "Iterable", "Hashable", "Literal",
    # the payload family itself, plus the enums/values its fields hold
    "VerificationStatus", "Network",
} | PAYLOAD_CLASSES


def _violations(annotation: ast.AST) -> List[str]:
    """Every annotation atom in ``annotation`` outside the allowlist."""
    bad: List[str] = []
    stack: List[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is Ellipsis:
                continue
            if isinstance(node.value, str):
                # A string annotation: parse and keep walking.
                try:
                    stack.append(ast.parse(node.value, mode="eval").body)
                except SyntaxError:
                    bad.append(repr(node.value))
                continue
            bad.append(repr(node.value))
        elif isinstance(node, (ast.Name, ast.Attribute)):
            chain = attribute_chain(node)
            if chain is None:
                bad.append(ast.dump(node))
            else:
                bad.extend(part for part in chain
                           if part not in ALLOWED_ATOMS)
        elif isinstance(node, ast.Subscript):
            stack.append(node.value)
            stack.append(node.slice)
        elif isinstance(node, (ast.Tuple, ast.List)):
            # Tuples in subscripts; lists as Callable argument groups.
            stack.extend(node.elts)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.Index):  # pragma: no cover (py<3.9 AST)
            stack.append(node.value)  # type: ignore[attr-defined]
        else:
            bad.append(type(node).__name__)
    return bad


@register
class PayloadPickleSafetyRule(Rule):
    """Payload dataclass fields use only allowlisted picklable types."""

    id = "payload-pickle-safety"
    description = ("fields of process-transport/cache-bundle payload "
                   "dataclasses must use allowlisted picklable types")
    scope = ("src/",)

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Check annotated fields of every payload class in the file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef) \
                    or node.name not in PAYLOAD_CLASSES:
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) \
                        or not isinstance(stmt.target, ast.Name):
                    continue
                bad = sorted(set(_violations(stmt.annotation)))
                if bad:
                    yield Finding(
                        context.relpath, stmt.lineno, self.id,
                        f"{node.name}.{stmt.target.id} annotation uses "
                        f"non-allowlisted type(s) {', '.join(bad)}; payload "
                        f"dataclasses cross the worker pipe and must stay "
                        f"picklable by construction")
