"""lock-discipline: instance state of lock-owning classes stays locked.

The verification service multiplexes jobs over worker threads, and its
correctness argument (docs/SERVICE.md) leans on a simple convention: a
class that creates its own ``threading.Lock``/``RLock``/``Condition``
(``self._lock``, ``self.lock``, ``self.wake``, …) mutates its instance
attributes only inside a ``with self.<lock>`` block.  PR 7 fixed a real
counter race in exactly this shape (``LpCache`` stats mutated outside the
cache lock), so the convention is now machine-checked: in any class that
assigns a lock to an instance attribute, every write to ``self.*`` outside
a ``with`` on one of the class's own locks is flagged.

Construction is exempt (``__init__``/``__post_init__`` run before the
instance is shared).  The rule is intra-class by design: writes to *other*
objects' attributes (``job.not_before = …``) follow the owning object's
discipline, not the writer's.  Genuinely single-threaded writes (a
cooperative-only code path, loop-thread-confined asyncio state) are
suppressed inline with a justification saying exactly why no lock is
needed — see docs/STATIC_ANALYSIS.md#lock-discipline.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..astutil import assignment_targets, attribute_chain, \
    self_attribute_target
from ..core import Finding, LintContext, Rule, register

#: ``threading`` factories whose product makes an attribute a lock.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                  "BoundedSemaphore"}

#: Methods that run before the instance can be shared across threads.
CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__"}


def _lock_attributes(class_node: ast.ClassDef) -> Set[str]:
    """Names of instance attributes assigned a lock/condition anywhere."""
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value,
                                                              ast.Call):
            continue
        chain = attribute_chain(node.value.func)
        if chain is None or chain[-1] not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            written = self_attribute_target(target)
            if written is not None and "." not in written:
                locks.add(written)
    return locks


class _MethodChecker(ast.NodeVisitor):
    """Flags ``self.*`` writes outside ``with self.<lock>`` in one method."""

    def __init__(self, relpath: str, qualname: str,
                 lock_attrs: Set[str]) -> None:
        self.relpath = relpath
        self.qualname = qualname
        self.lock_attrs = lock_attrs
        self.guard_depth = 0
        self.findings: List[Finding] = []

    def _is_own_lock(self, expr: ast.AST) -> bool:
        chain = attribute_chain(expr)
        return (chain is not None and len(chain) == 2
                and chain[0] == "self" and chain[1] in self.lock_attrs)

    def visit_With(self, node: ast.With) -> None:
        guarded = any(self._is_own_lock(item.context_expr)
                      for item in node.items)
        if guarded:
            self.guard_depth += 1
        self.generic_visit(node)
        if guarded:
            self.guard_depth -= 1

    def _check_statement(self, node: ast.AST) -> None:
        if self.guard_depth:
            return
        for target in assignment_targets(node):
            written = self_attribute_target(target)
            if written is None:
                continue
            locks = ", ".join(f"self.{name}"
                              for name in sorted(self.lock_attrs))
            self.findings.append(Finding(
                self.relpath, target.lineno, "lock-discipline",
                f"{self.qualname} writes self.{written} outside a "
                f"`with` on this class's lock(s) ({locks})"))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_statement(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_statement(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_statement(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # A class nested inside a method has its own (separate) discipline.
        return


@register
class LockDisciplineRule(Rule):
    """Writes to lock-owning classes' state must hold the class's lock."""

    id = "lock-discipline"
    description = ("in classes that create their own threading locks, "
                   "self.* writes must sit inside `with self.<lock>`")
    scope = ("src/",)

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Check every lock-owning class in the file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = _lock_attributes(node)
            if not lock_attrs:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name in CONSTRUCTION_METHODS:
                    continue
                checker = _MethodChecker(context.relpath,
                                         f"{node.name}.{method.name}",
                                         lock_attrs)
                checker.visit(method)
                yield from checker.findings
