"""rng-discipline: randomness flows through seeded ``Generator``\\ s only.

Solo-identical service trajectories and replayable benchmarks (PRs 7–9)
require every random draw in the library to be a pure function of an
explicit seed: ``utils/rng.py`` normalises seeds into
``numpy.random.Generator`` instances and ``bench_service.py`` derives its
per-job RNG from the job index (``_job_rng``), never from global state.
A single ``np.random.seed``/``np.random.rand`` call — or any stdlib
``random`` use — reintroduces hidden global state that makes runs depend
on import order and on *other* components' draws.

The rule bans, in ``src/``:

* calls through the legacy ``numpy.random`` module-state API
  (``np.random.seed``, ``np.random.rand``, ``np.random.shuffle``, …) —
  only the ``Generator`` construction surface (``default_rng``,
  ``SeedSequence``, the bit generators) is allowed;
* any import of the stdlib :mod:`random` module.

Annotations like ``np.random.Generator`` are untouched: the rule flags
*calls*, and constructing generators from explicit seeds is the sanctioned
pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import ImportAliases, attribute_chain
from ..core import Finding, LintContext, Rule, register

#: The ``numpy.random`` construction surface that is allowed: explicit
#: generators built from explicit seeds.
ALLOWED_NUMPY_RANDOM = {"default_rng", "Generator", "SeedSequence",
                        "BitGenerator", "PCG64", "PCG64DXSM", "Philox",
                        "MT19937", "SFC64"}


@register
class RngDisciplineRule(Rule):
    """No global-state RNG: seeded ``Generator`` instances only."""

    id = "rng-discipline"
    description = ("no numpy.random module-state calls and no stdlib "
                   "`random` in src/; use seeded Generators (utils/rng.py)")
    scope = ("src/",)

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Flag legacy numpy.random calls and stdlib random imports."""
        aliases = ImportAliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" \
                            or alias.name.startswith("random."):
                        yield Finding(
                            context.relpath, node.lineno, self.id,
                            "stdlib `random` is global-state RNG; use "
                            "repro.utils.rng.as_rng / spawn_rng instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield Finding(
                        context.relpath, node.lineno, self.id,
                        "stdlib `random` is global-state RNG; use "
                        "repro.utils.rng.as_rng / spawn_rng instead")
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                resolved = aliases.resolve_chain(chain)
                if (len(resolved) >= 3 and resolved[0] == "numpy"
                        and resolved[1] == "random"
                        and resolved[2] not in ALLOWED_NUMPY_RANDOM):
                    yield Finding(
                        context.relpath, node.lineno, self.id,
                        f"np.random.{resolved[2]}() mutates/reads global "
                        f"RNG state; draw from a seeded "
                        f"numpy.random.Generator instead")
