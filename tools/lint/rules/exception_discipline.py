"""exception-discipline: broad handlers are marked isolation boundaries.

The service stack survives worker crashes *because* a handful of broad
``except Exception`` handlers sit at deliberate isolation boundaries (the
worker loop, the pipe server, the supervisor's restart path) and convert
arbitrary verifier failures into structured :class:`JobError` results.
Those handlers are fine — but only when a reader can tell them apart from
an accidental exception swallow.  The repository's pre-existing idiom
marks every such boundary with ``# noqa: BLE001 - <reason>``; this rule
machine-checks it:

* ``except:`` (bare) is forbidden outright — it catches ``SystemExit`` and
  ``KeyboardInterrupt``, so even an isolation boundary must spell out
  ``except BaseException`` to show it means it;
* ``except Exception``/``except BaseException`` (alone or in a tuple)
  requires a ``# noqa: BLE001 - <reason>`` marker on the handler line
  explaining what the boundary isolates.

Narrow handlers (``except OSError``) need no marker.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..astutil import attribute_chain
from ..core import Finding, LintContext, Rule, register

#: Handler types that count as "broad": everything and beyond.
BROAD_NAMES = {"Exception", "BaseException"}

#: The repository's isolation-boundary marker (reason mandatory).
_NOQA_RE = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")


def _broad_name(handler_type: ast.AST) -> str:
    """The broad exception name caught by ``handler_type``, or ``""``."""
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) \
        else [handler_type]
    for node in nodes:
        chain = attribute_chain(node)
        if chain is not None and chain[-1] in BROAD_NAMES:
            return chain[-1]
    return ""


@register
class ExceptionDisciplineRule(Rule):
    """Bare excepts forbidden; broad excepts need a BLE001 justification."""

    id = "exception-discipline"
    description = ("no bare `except:`; `except Exception/BaseException` "
                   "requires `# noqa: BLE001 - <reason>` on the line")
    scope = ("src/", "tools/")

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Flag bare and unmarked-broad exception handlers."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    context.relpath, node.lineno, self.id,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exception (even `except BaseException` at an "
                    "isolation boundary)")
                continue
            broad = _broad_name(node.type)
            if broad and not _NOQA_RE.search(context.line_text(node.lineno)):
                yield Finding(
                    context.relpath, node.lineno, self.id,
                    f"broad `except {broad}` without an isolation-boundary "
                    f"marker; add `# noqa: BLE001 - <what this isolates>` "
                    f"or narrow the handler")
