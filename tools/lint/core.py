"""Rule framework of the project-invariant linter (stdlib only, offline).

The linter walks Python files with :mod:`ast` — it never imports the
checked code, so it runs in the dependency-free CI ``lint`` job — and
reports :class:`Finding`\\ s in ``file:line rule-id message`` form.  Rules
are small :class:`Rule` subclasses registered via :func:`register`; each
rule declares the path *scope* it applies to (the lock-discipline rule has
no business in ``tests/``, the wall-clock rule exempts the one module that
is allowed to read the clock), so one ``python -m tools.lint src tools
tests`` invocation runs every rule exactly where its invariant lives.

Suppressions
------------
A finding is silenced by an inline comment on the *flagged line*::

    self._resolved += 1  # lint: disable=lock-discipline - loop-thread confined

The justification after `` - `` is **mandatory**: a suppression without one
is itself a finding (rule id ``suppression``), as is a suppression naming a
rule id that does not exist.  ``disable=all`` silences every rule on the
line — same justification requirement.  The exception-discipline rule
additionally honours the repository's pre-existing isolation-boundary
marker (``# noqa: BLE001 - <reason>``); see the rule's module.

See ``docs/STATIC_ANALYSIS.md`` for the invariant each shipped rule pins
and the policy on adding suppressions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """The canonical ``file:line rule-id message`` report line."""
        return f"{self.path}:{self.line} {self.rule} {self.message}"


@dataclass
class LintContext:
    """Everything a rule may inspect about one file (already parsed)."""

    path: Path
    relpath: str
    source: str
    lines: List[str]
    tree: ast.Module

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class of all lint rules.

    Subclasses set :attr:`id` (the kebab-case identifier used in reports
    and suppressions), :attr:`description`, the path :attr:`scope` the rule
    applies to (posix-style prefixes relative to the lint root; empty means
    every file) and optional :attr:`exempt` prefixes carved out of the
    scope, then implement :meth:`check`.
    """

    id: str = ""
    description: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the file at ``relpath``."""
        if any(relpath.startswith(prefix) for prefix in self.exempt):
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``context``."""
        raise NotImplementedError


#: Registry of rule instances, keyed by rule id (populated by
#: :func:`register` when ``tools.lint.rules`` is imported).
REGISTRY: Dict[str, Rule] = {}

#: Pseudo rule ids the framework itself emits (valid suppression targets
#: only where that makes sense; ``parse-error`` cannot be suppressed).
FRAMEWORK_RULE_IDS = ("parse-error", "suppression")


def register(rule_cls: type) -> type:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    REGISTRY[rule.id] = rule
    return rule_cls


#: ``# lint: disable=<ids>`` with everything after the ids captured so the
#: mandatory `` - justification`` tail can be validated separately.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-]+)(.*)$")

#: The mandatory justification tail: `` - <non-empty text>``.
_JUSTIFICATION_RE = re.compile(r"^\s*-\s+\S")


@dataclass
class Suppressions:
    """Per-file inline suppressions plus the findings they generate.

    ``by_line`` maps a 1-indexed line number to the rule ids disabled on
    that line (``{"all"}`` disables every rule).  Malformed suppressions —
    no justification, or an unknown rule id — surface as ``suppression``
    findings so a typo can never silently disable a rule.
    """

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def active(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a suppression on its line."""
        ids = self.by_line.get(finding.line)
        if ids is None:
            return False
        return finding.rule in ids or "all" in ids


def parse_suppressions(relpath: str, lines: Sequence[str],
                       known_ids: Optional[Set[str]] = None) -> Suppressions:
    """Collect ``# lint: disable=...`` comments (validating justifications).

    ``known_ids`` defaults to the registry's rule ids plus the framework's
    own; suppressions naming anything else are reported, not honoured.
    """
    if known_ids is None:
        known_ids = set(REGISTRY) | set(FRAMEWORK_RULE_IDS) | {"all"}
    suppressions = Suppressions()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        unknown = sorted(ids - known_ids)
        if unknown:
            suppressions.findings.append(Finding(
                relpath, lineno, "suppression",
                f"unknown rule id(s) in suppression: {', '.join(unknown)}"))
            continue
        if not _JUSTIFICATION_RE.match(match.group(2)):
            suppressions.findings.append(Finding(
                relpath, lineno, "suppression",
                "suppression lacks a justification: write "
                "`# lint: disable=<rule-id> - <why this is safe>`"))
            continue
        suppressions.by_line.setdefault(lineno, set()).update(ids)
    return suppressions


def python_files(targets: Iterable[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``*.py`` paths."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _relpath(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` in posix form (as-given fallback)."""
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are the unsuppressed violations (including malformed
    suppressions and parse errors); ``suppressed`` the findings silenced by
    a justified inline suppression; ``missing`` the targets that did not
    exist.  The run is clean iff ``ok``.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no findings, no missing inputs)."""
        return not self.findings and not self.missing


def lint_file(path: Path, root: Path,
              rules: Optional[Sequence[Rule]] = None) -> Tuple[List[Finding],
                                                               List[Finding]]:
    """Run every applicable rule on one file.

    Returns ``(findings, suppressed)``.  A file that does not parse yields
    a single unsuppressable ``parse-error`` finding — the other rules need
    a tree to work on.
    """
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ([Finding(relpath, exc.lineno or 1, "parse-error",
                         f"file does not parse: {exc.msg}")], [])
    if rules is None:
        rules = list(REGISTRY.values())
    suppressions = parse_suppressions(relpath, lines)
    context = LintContext(path=path, relpath=relpath, source=source,
                          lines=lines, tree=tree)
    findings: List[Finding] = list(suppressions.findings)
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(context):
            if suppressions.active(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def run_lint(targets: Iterable[str], root: Optional[Path] = None,
             rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint ``targets`` (files or directories) against ``rules``.

    ``root`` anchors the relative paths used for rule scoping and report
    lines; it defaults to the current working directory, so running from
    the repository root scopes rules exactly as documented.
    """
    if rules is None:
        # Imported lazily so ``core`` stays importable on its own; the
        # import populates :data:`REGISTRY` via :func:`register`.
        from . import rules as _rules  # noqa: F401 (import for side effect)
        rules = list(REGISTRY.values())
    root = (Path.cwd() if root is None else Path(root)).resolve()
    report = LintReport()
    for path in python_files(targets):
        if not path.exists():
            report.missing.append(str(path))
            continue
        report.files += 1
        findings, suppressed = lint_file(path, root, rules)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
