"""CLI of the project-invariant linter.

``python -m tools.lint <targets>`` runs the AST rules; ``--all`` chains
the repository's two other static gates (docstring and Markdown-link
checks) on their CI-pinned surfaces, so one command reproduces the whole
dependency-free ``lint`` CI job locally.  Exit status: 0 clean, 1 findings
(or a failing chained gate), 2 usage error.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import List, Optional

from .core import REGISTRY, run_lint

#: The docstring-gated surfaces — kept in lockstep with the CI docs job
#: (.github/workflows/ci.yml) so `--all` reproduces it exactly.
DOCSTRING_SURFACES = (
    "src/repro/engine", "src/repro/verifiers", "src/repro/core/abonn.py",
    "src/repro/bab/baseline.py", "src/repro/baselines", "src/repro/service",
)

#: The Markdown trees the link checker gates in CI.
MARKDOWN_TARGETS = ("README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md",
                    "docs")


def _load_tool(stem: str):
    """Import a sibling ``tools/<stem>.py`` single-file checker by path.

    The existing checkers are standalone scripts, not package members;
    loading them by file path keeps them working unchanged in both their
    CLI form and under ``--all``.
    """
    path = Path(__file__).resolve().parents[1] / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(stem, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: lint targets, optionally chaining the other gates."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Rule-based AST linter for this repository's "
                    "project invariants (stdlib only; never imports "
                    "the checked code).")
    parser.add_argument("targets", nargs="*",
                        help="files or directories to lint "
                             "(e.g. src tools tests)")
    parser.add_argument("--all", action="store_true", dest="run_all",
                        help="also run the docstring and Markdown-link "
                             "gates on their CI surfaces")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    args = parser.parse_args(argv)

    # Populate the registry before --list-rules or linting.
    from . import rules as _rules  # noqa: F401 (import for side effect)

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            rule = REGISTRY[rule_id]
            scope = ", ".join(rule.scope) if rule.scope else "<everywhere>"
            print(f"{rule_id}  [{scope}]")
            print(f"    {rule.description}")
        return 0

    if not args.targets:
        parser.print_usage(sys.stderr)
        print("error: no targets given (try: src tools tests)",
              file=sys.stderr)
        return 2

    report = run_lint(args.targets)
    for missing in report.missing:
        print(f"MISSING INPUT: {missing}")
    for finding in report.findings:
        print(finding.format())
    status = 0 if report.ok else 1
    summary = (f"{'ok' if report.ok else 'FAIL'}: {report.files} file(s), "
               f"{len(report.findings)} finding(s), "
               f"{len(report.suppressed)} suppressed")
    print(summary)

    if args.run_all:
        print("-- docstring gate --")
        docstrings = _load_tool("check_docstrings")
        status = max(status, docstrings.main(list(DOCSTRING_SURFACES)))
        print("-- markdown-link gate --")
        links = _load_tool("check_markdown_links")
        status = max(status, links.main(list(MARKDOWN_TARGETS)))

    return status


if __name__ == "__main__":
    sys.exit(main())
