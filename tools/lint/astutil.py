"""Small :mod:`ast` helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The dotted name of an attribute chain, outermost last.

    ``np.random.seed`` → ``("np", "random", "seed")``; returns ``None``
    when the chain is rooted in anything but a plain name (a call result,
    a subscript), because such chains cannot be resolved statically.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class ImportAliases:
    """Which local names refer to which imported modules/objects.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    shuffle`` maps ``shuffle -> random.shuffle``.  Rules use this to
    resolve call sites back to the module that actually provides them, so
    aliasing cannot dodge a ban.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: Dict[str, str] = {}
        self.objects: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.objects[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve_chain(self, chain: Tuple[str, ...]) -> Tuple[str, ...]:
        """Rewrite a chain's root through the import aliases.

        ``("np", "random", "seed")`` → ``("numpy", "random", "seed")`` when
        ``numpy`` was imported as ``np``; ``("shuffle",)`` →
        ``("random", "shuffle")`` after ``from random import shuffle``.
        Chains whose root is not an import are returned unchanged.
        """
        root = chain[0]
        if root in self.modules:
            return tuple(self.modules[root].split(".")) + chain[1:]
        if root in self.objects:
            return tuple(self.objects[root].split(".")) + chain[1:]
        return chain


def self_attribute_target(target: ast.AST) -> Optional[str]:
    """The dotted attribute written when ``target`` assigns into ``self``.

    ``self.x`` → ``"x"``, ``self.stats.hits`` → ``"stats.hits"``; ``None``
    for anything that is not a plain attribute chain rooted at ``self``
    (subscript stores like ``self.jobs[0] = ...`` mutate a container the
    attribute points to, not the attribute binding itself).
    """
    chain = attribute_chain(target)
    if chain is None or len(chain) < 2 or chain[0] != "self":
        return None
    return ".".join(chain[1:])


def assignment_targets(node: ast.AST) -> List[ast.AST]:
    """Every target expression written by an assignment-like statement."""
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target] if getattr(node, "value", True) is not None \
            else []
    else:
        return []
    flat: List[ast.AST] = []
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            flat.append(target)
    return flat


def decorator_name(decorator: ast.AST) -> str:
    """The terminal identifier of a decorator (``prop.setter`` → ``setter``)."""
    target = decorator
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def is_public_name(name: str) -> bool:
    """Public by Python convention: no leading underscore."""
    return not name.startswith("_")


def is_dunder(name: str) -> bool:
    """Whether ``name`` is a ``__dunder__`` method name."""
    return name.startswith("__") and name.endswith("__")
